//! Channel-generic party state machines for the Fig. 3 protocol.
//!
//! [`ClientSession`] (Alice: garbles, owns the data sample, decodes the
//! result) and [`ServerSession`] (Bob: evaluates, his DL parameters enter
//! through OT) are the two halves of `run_compiled`, factored out so the
//! *same* code runs as two threads over `mem_pair` (tests, benches), two
//! OS processes over [`TcpChannel`], or under a [`SimChannel`] link model
//! — the transport is a type parameter, never a fork in the protocol
//! logic.
//!
//! # Offline/online split
//!
//! DeepSecure's garbling is input-independent, so both halves also come
//! apart into a **setup** phase (base-OT / IKNP seeding, garbling) and an
//! **online** phase (OT extension + table streaming + evaluation):
//!
//! * [`GarbledMaterial::garble`] produces a run's tables and labels with
//!   no channel at all — a precompute pool can stockpile them.
//! * [`ClientSession::setup`] / [`ServerSession::setup`] run the one-time
//!   base-OT seeding on a fresh connection (the client side can feed it
//!   offline-generated [`SenderPrecomp`] keypairs via
//!   [`ClientSession::setup_with`]).
//! * [`ClientSession::run_online`] / [`ServerSession::run_online`] then
//!   execute one inference per call, **reusing** the setup across
//!   requests on the same connection — the serving layer's per-query hot
//!   path.
//!
//! [`ClientSession::run`] / [`ServerSession::run`] compose the pieces
//! back into the original single-shot behaviour.
//!
//! # Chunk streaming
//!
//! With `InferenceConfig::chunk_gates > 0` each cycle runs as a streaming
//! pipeline instead of a buffered one: active input labels and the OT
//! extension travel first, then the garbled tables flow in chunks of
//! `chunk_gates` non-free gates — produced by the incremental
//! [`Garbler::begin_cycle`] API (or sliced from precomputed material) and
//! consumed by the evaluator's feed path as they arrive. Garbling,
//! transfer, and evaluation overlap in time and peak resident material
//! drops from O(circuit) to O(chunk) (measured: `peak_material_bytes` on
//! both outcomes). Chunk boundaries are *derived* from the circuit's
//! non-free gate count and the agreed `chunk_gates` — never framed — so
//! a streamed run moves bit-identical per-phase wire bytes to a buffered
//! one; both parties must simply agree on the value (binaries pin it in
//! their handshakes).
//!
//! Sessions measure their own traffic as *deltas* of the channel's byte
//! counters, so pre-protocol traffic (e.g. the `two_party` handshake) is
//! never attributed to the protocol, and both parties' [`WireBreakdown`]s
//! describe the same wire regardless of transport.
//!
//! [`TcpChannel`]: deepsecure_ot::TcpChannel
//! [`SimChannel`]: deepsecure_ot::SimChannel

use std::sync::Arc;
use std::time::Instant;

use deepsecure_crypto::Block;
use deepsecure_garble::{CycleGarbling, Evaluator, GarbledCycle, Garbler};
use deepsecure_ot::channel::Channel;
use deepsecure_ot::ext::{ExtReceiver, ExtSender, SenderPrecomp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workpool::ThreadPool;

use crate::compile::Compiled;
use crate::protocol::{InferenceConfig, PhaseSpan, ProtocolError};

/// High-water mark of garbled-table bytes resident in a session's own
/// buffers — the measured number behind the streaming pipeline's O(chunk)
/// memory claim. Counts table blocks held (material, chunk buffers),
/// not transient serialization copies, identically on every path.
#[derive(Clone, Copy, Debug, Default)]
struct PeakBytes {
    current: u64,
    peak: u64,
}

impl PeakBytes {
    fn alloc(&mut self, bytes: u64) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    fn free(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// A buffer that lives only within one step (alloc + free).
    fn observe(&mut self, bytes: u64) {
        self.alloc(bytes);
        self.free(bytes);
    }
}

/// Per-phase wire traffic of one protocol run, in bytes.
///
/// Each field counts **both directions** of its phase as observed from one
/// endpoint (sent + received deltas around the phase), so the two parties
/// report identical breakdowns and the fields sum to the total traffic of
/// the run. This is the measured decomposition behind the paper's
/// communication columns: garbled tables are the `α` term that dominates,
/// OT-extension the per-weight-bit term, base OT the fixed setup cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireBreakdown {
    /// One-time base-OT setup (public-key transfers seeding IKNP).
    pub base_ot: u64,
    /// IKNP OT-extension traffic (u-matrix + masked label pairs).
    pub ot_ext: u64,
    /// Garbled tables (client → server), the dominant `α` term.
    pub tables: u64,
    /// Active input labels: constants, initial registers, and the
    /// garbler's own input labels (client → server).
    pub input_labels: u64,
    /// Output color bits (server → client), length prefix included.
    pub output_bits: u64,
}

impl WireBreakdown {
    /// Total protocol traffic, both directions.
    pub fn total(&self) -> u64 {
        self.base_ot + self.ot_ext + self.tables + self.input_labels + self.output_bits
    }
}

impl std::ops::AddAssign for WireBreakdown {
    /// Field-wise accumulation — what server-level stats sum per request.
    fn add_assign(&mut self, rhs: WireBreakdown) {
        self.base_ot += rhs.base_ot;
        self.ot_ext += rhs.ot_ext;
        self.tables += rhs.tables;
        self.input_labels += rhs.input_labels;
        self.output_bits += rhs.output_bits;
    }
}

/// Sent + received — the phase-delta yardstick used by both sessions.
fn traffic<C: Channel>(chan: &C) -> u64 {
    chan.bytes_sent() + chan.bytes_received()
}

/// Process-global live wire counters: every phase delta a session measures
/// is also added here the moment it is measured (per chunk on streamed
/// table transfers), so a scraper sees the [`WireBreakdown`] decomposition
/// *while* requests run instead of waiting for end-of-run reports. The
/// counters observe the same deltas the breakdown records — they never
/// touch the channel, so wire bytes are bit-identical with telemetry on or
/// off.
pub mod wire_metrics {
    use telemetry::Counter;

    /// Base-OT setup bytes (both directions).
    pub static BASE_OT: Counter = Counter::new();
    /// OT-extension bytes (both directions).
    pub static OT_EXT: Counter = Counter::new();
    /// Garbled-table bytes.
    pub static TABLES: Counter = Counter::new();
    /// Active input-label bytes.
    pub static INPUT_LABELS: Counter = Counter::new();
    /// Output color-bit bytes.
    pub static OUTPUT_BITS: Counter = Counter::new();
    /// Bytes sent by sessions in this process (direction counter).
    pub static SENT: Counter = Counter::new();
    /// Bytes received by sessions in this process (direction counter).
    pub static RECEIVED: Counter = Counter::new();

    /// The per-phase counters as `(phase_label, value)` rows, in
    /// [`super::WireBreakdown`] field order — the `/metrics` family body.
    #[must_use]
    pub fn phases() -> [(&'static str, u64); 5] {
        [
            ("base_ot", BASE_OT.get()),
            ("ot_ext", OT_EXT.get()),
            ("tables", TABLES.get()),
            ("input_labels", INPUT_LABELS.get()),
            ("output_bits", OUTPUT_BITS.get()),
        ]
    }
}

/// Adds one measured phase delta to both the run's breakdown field and
/// the matching process-global live counter — the single point keeping
/// [`WireBreakdown`] and [`wire_metrics`] in agreement.
fn tally(field: &mut u64, counter: &telemetry::Counter, delta: u64) {
    *field += delta;
    counter.add(delta);
}

/// Input-independent garbled material for one protocol run: every cycle's
/// tables and labels plus the initial register labels — producible long
/// before the inputs (or even the peer) exist.
///
/// Consumed by [`ClientSession::run_online`]: wire labels are one-time
/// pads, so one material must never serve two runs.
pub struct GarbledMaterial {
    cycles: Vec<GarbledCycle>,
    initial_registers: Vec<Block>,
}

impl std::fmt::Debug for GarbledMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GarbledMaterial")
            .field("cycles", &self.cycles.len())
            .finish_non_exhaustive()
    }
}

impl GarbledMaterial {
    /// Garbles `n_cycles` clock cycles of the compiled circuit offline.
    pub fn garble<R: Rng + ?Sized>(
        compiled: &Compiled,
        n_cycles: usize,
        rng: &mut R,
    ) -> GarbledMaterial {
        GarbledMaterial::garble_with(compiled, n_cycles, rng, ThreadPool::sequential())
    }

    /// [`GarbledMaterial::garble`] with the per-level gate work fanned out
    /// across `pool`. Tables and labels are bit-identical to the
    /// sequential path's for the same RNG stream.
    pub fn garble_with<R: Rng + ?Sized>(
        compiled: &Compiled,
        n_cycles: usize,
        rng: &mut R,
        pool: ThreadPool,
    ) -> GarbledMaterial {
        let mut garbler = Garbler::new(&compiled.circuit, rng).with_pool(pool);
        // Must be read before the first garble_cycle: garbling latches the
        // register labels forward to the next cycle.
        let initial_registers = garbler.initial_register_labels();
        let cycles = (0..n_cycles).map(|_| garbler.garble_cycle(rng)).collect();
        GarbledMaterial {
            cycles,
            initial_registers,
        }
    }

    /// Number of clock cycles this material covers.
    pub fn num_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Total garbled-table bytes across every cycle (what holding this
    /// material resident costs).
    pub fn table_bytes(&self) -> u64 {
        self.cycles
            .iter()
            .map(|c| (c.tables.len() * 16) as u64)
            .sum()
    }
}

/// Where a run's garbled material comes from.
///
/// The serving pool hands [`MaterialSource::Precomputed`] for models cheap
/// enough to stockpile whole (the classic offline/online split), and
/// [`MaterialSource::Live`] for models whose tables are too large to pin
/// per pooled instance — those garble **while streaming**, chunk by chunk,
/// holding O(chunk) table bytes instead of O(circuit).
#[derive(Debug)]
pub enum MaterialSource {
    /// Fully pre-garbled offline; resident cost is the whole material.
    Precomputed(GarbledMaterial),
    /// Garbled on the fly during the run; `seed` derives the garbler's
    /// RNG stream (the same seed reproduces the same labels and tables).
    Live {
        /// Clock cycles to garble (must match the per-cycle input bits).
        n_cycles: usize,
        /// Garbler RNG seed.
        seed: u64,
    },
}

impl From<GarbledMaterial> for MaterialSource {
    fn from(material: GarbledMaterial) -> MaterialSource {
        MaterialSource::Precomputed(material)
    }
}

impl MaterialSource {
    /// Clock cycles this source will produce.
    pub fn num_cycles(&self) -> usize {
        match self {
            MaterialSource::Precomputed(m) => m.num_cycles(),
            MaterialSource::Live { n_cycles, .. } => *n_cycles,
        }
    }
}

/// A client session's completed base-OT setup: the live IKNP sender plus
/// the setup's traffic and timeline. Reused across every
/// [`ClientSession::run_online`] call on the same connection.
#[derive(Debug)]
pub struct ClientSetup {
    ot: ExtSender,
    /// Bytes this endpoint sent during setup.
    pub sent: u64,
    /// Bytes this endpoint received during setup.
    pub received: u64,
    /// Setup span (relative to the epoch passed in).
    pub span: PhaseSpan,
}

impl ClientSetup {
    /// Both directions of the base-OT setup — the `base_ot` wire term.
    pub fn base_ot_bytes(&self) -> u64 {
        self.sent + self.received
    }

    /// `true` when the OT-extension state is at a batch boundary and can
    /// be carried across a reconnect without re-running base OT. `false`
    /// while an extension batch is mid-transfer (the correlation streams
    /// have advanced past the peer's view — resuming would desynchronise).
    #[must_use]
    pub fn resumable(&self) -> bool {
        !self.ot.is_in_flight()
    }
}

/// A server session's completed base-OT setup (IKNP receiver side).
#[derive(Debug)]
pub struct ServerSetup {
    ot: ExtReceiver,
    /// Bytes this endpoint sent during setup.
    pub sent: u64,
    /// Bytes this endpoint received during setup.
    pub received: u64,
}

impl ServerSetup {
    /// Both directions of the base-OT setup — the `base_ot` wire term.
    pub fn base_ot_bytes(&self) -> u64 {
        self.sent + self.received
    }

    /// `true` when the OT-extension state is at a batch boundary and can
    /// be carried across a reconnect — see [`ClientSetup::resumable`].
    #[must_use]
    pub fn resumable(&self) -> bool {
        !self.ot.is_in_flight()
    }
}

/// What the client knows after a run: the decoded result plus its side of
/// the timeline and traffic accounting.
#[derive(Clone, Debug)]
pub struct ClientOutcome {
    /// Decoded inference label of the final cycle.
    pub label: usize,
    /// Decoded output value of every cycle.
    pub cycle_labels: Vec<usize>,
    /// Bytes this session sent (delta over the run).
    pub sent: u64,
    /// Bytes this session received (delta over the run).
    pub received: u64,
    /// Per-phase wire traffic (`wire.tables` is the `α` material term).
    /// Online-only runs report `base_ot == 0`; the setup accounts for it.
    pub wire: WireBreakdown,
    /// Base-OT setup span (relative to the epoch passed to `run`).
    pub ot_setup: PhaseSpan,
    /// Per-cycle `(garble, ot+transfer)` spans. Online-only runs report
    /// zero-width garble spans (the garbling happened offline).
    pub cycles: Vec<(PhaseSpan, PhaseSpan)>,
    /// High-water mark of garbled-table bytes this session held at once:
    /// the whole material on buffered runs, one chunk buffer on streamed
    /// live runs — the measured O(chunk) memory claim.
    pub peak_material_bytes: u64,
}

/// What the server knows after a run: timings and traffic, never outputs.
#[derive(Clone, Debug)]
pub struct ServerOutcome {
    /// Bytes this session sent (delta over the run).
    pub sent: u64,
    /// Bytes this session received (delta over the run).
    pub received: u64,
    /// Per-phase wire traffic (mirrors the client's view). Online-only
    /// runs report `base_ot == 0`; the setup accounts for it.
    pub wire: WireBreakdown,
    /// Per-cycle evaluation spans. On chunk-streamed runs the span covers
    /// feeding the arriving chunks, so it includes table transfer time —
    /// that interleaving is the point of streaming.
    pub evals: Vec<PhaseSpan>,
    /// High-water mark of garbled-table bytes this session held at once:
    /// a whole cycle's tables on buffered runs, one chunk on streamed.
    pub peak_material_bytes: u64,
}

/// The garbling party (Alice / the client of the paper).
#[derive(Debug)]
pub struct ClientSession {
    compiled: Arc<Compiled>,
    cfg: InferenceConfig,
}

/// Streams one garbled cycle (tables, active labels, OT extension) and
/// decodes the returned color bits — the per-cycle online hot path shared
/// by [`ClientSession::run`] and [`ClientSession::run_online`].
///
/// Returns the decoded label bits plus the instant (relative to `epoch`)
/// at which this side's *sending* work ended — i.e. after the OT send,
/// before blocking on the returned colors — so the recorded OT span
/// excludes the server's evaluation time (the Fig. 5 convention).
fn client_cycle<C: Channel>(
    chan: &mut C,
    ot: &mut ExtSender,
    cycle: &GarbledCycle,
    g_bits: &[bool],
    first_payload: Option<(&[Block; 2], &[Block])>,
    wire: &mut WireBreakdown,
    epoch: Instant,
) -> Result<(Vec<bool>, f64), ProtocolError> {
    if let Some((const_labels, initial_registers)) = first_payload {
        let _s = telemetry::span!("client.input_labels");
        let before = traffic(chan);
        chan.send_block(const_labels[0])?;
        chan.send_block(const_labels[1])?;
        chan.send_blocks(initial_registers)?;
        tally(
            &mut wire.input_labels,
            &wire_metrics::INPUT_LABELS,
            traffic(chan) - before,
        );
    }
    {
        let _s = telemetry::span!("client.tables");
        let before = traffic(chan);
        chan.send_blocks(&cycle.tables)?;
        tally(
            &mut wire.tables,
            &wire_metrics::TABLES,
            traffic(chan) - before,
        );
    }
    {
        let _s = telemetry::span!("client.input_labels");
        let before = traffic(chan);
        chan.send_blocks(&cycle.garbler_active(g_bits))?;
        tally(
            &mut wire.input_labels,
            &wire_metrics::INPUT_LABELS,
            traffic(chan) - before,
        );
    }
    {
        let _s = telemetry::span!("client.ot_ext");
        let before = traffic(chan);
        ot.send(chan, &cycle.evaluator_input_labels)?;
        tally(
            &mut wire.ot_ext,
            &wire_metrics::OT_EXT,
            traffic(chan) - before,
        );
    }
    let ot_end_s = epoch.elapsed().as_secs_f64();
    let turnaround = telemetry::span!("client.turnaround");
    let before = traffic(chan);
    let colors = chan.recv_bits()?;
    tally(
        &mut wire.output_bits,
        &wire_metrics::OUTPUT_BITS,
        traffic(chan) - before,
    );
    turnaround.end();
    let label_bits = colors
        .iter()
        .zip(&cycle.output_decode)
        .map(|(&col, &d)| col ^ d)
        .collect();
    Ok((label_bits, ot_end_s))
}

/// Sends the cycle-stream prologue of the **streamed** order: first-cycle
/// payload (constants + initial registers), the garbler's active input
/// labels, then the OT extension — everything the evaluator needs *before*
/// the first table chunk, so it can evaluate while later chunks are still
/// in flight. Returns the instant the OT send ended.
fn client_stream_prologue<C: Channel>(
    chan: &mut C,
    ot: &mut ExtSender,
    g_active: &[Block],
    evaluator_input_labels: &[(Block, Block)],
    first_payload: Option<(&[Block; 2], &[Block])>,
    wire: &mut WireBreakdown,
    epoch: Instant,
) -> Result<f64, ProtocolError> {
    {
        let _s = telemetry::span!("client.input_labels");
        let before = traffic(chan);
        if let Some((const_labels, initial_registers)) = first_payload {
            chan.send_block(const_labels[0])?;
            chan.send_block(const_labels[1])?;
            chan.send_blocks(initial_registers)?;
        }
        chan.send_blocks(g_active)?;
        tally(
            &mut wire.input_labels,
            &wire_metrics::INPUT_LABELS,
            traffic(chan) - before,
        );
    }
    let _s = telemetry::span!("client.ot_ext");
    let before = traffic(chan);
    ot.send(chan, evaluator_input_labels)?;
    tally(
        &mut wire.ot_ext,
        &wire_metrics::OT_EXT,
        traffic(chan) - before,
    );
    Ok(epoch.elapsed().as_secs_f64())
}

/// Decodes the returned output colors (the cycle epilogue shared by both
/// streamed paths).
fn client_stream_epilogue<C: Channel>(
    chan: &mut C,
    output_decode: &[bool],
    wire: &mut WireBreakdown,
) -> Result<Vec<bool>, ProtocolError> {
    let _s = telemetry::span!("client.turnaround");
    let before = traffic(chan);
    let colors = chan.recv_bits()?;
    tally(
        &mut wire.output_bits,
        &wire_metrics::OUTPUT_BITS,
        traffic(chan) - before,
    );
    Ok(colors
        .iter()
        .zip(output_decode)
        .map(|(&col, &d)| col ^ d)
        .collect())
}

/// Streams one **precomputed** cycle in the chunked order: prologue, then
/// the stored table stream sliced into `chunk_gates`-gate chunks (2 rows
/// per non-free gate), then the decoded colors. Byte-for-byte the same
/// wire content as [`client_cycle`], split across sends.
#[allow(clippy::too_many_arguments)]
fn client_cycle_streamed_ready<C: Channel>(
    chan: &mut C,
    ot: &mut ExtSender,
    cycle: &GarbledCycle,
    g_bits: &[bool],
    first_payload: Option<(&[Block; 2], &[Block])>,
    chunk_gates: usize,
    wire: &mut WireBreakdown,
    epoch: Instant,
) -> Result<(Vec<bool>, f64), ProtocolError> {
    let ot_end_s = client_stream_prologue(
        chan,
        ot,
        &cycle.garbler_active(g_bits),
        &cycle.evaluator_input_labels,
        first_payload,
        wire,
        epoch,
    )?;
    for chunk in cycle.tables.chunks(2 * chunk_gates) {
        let _s = telemetry::span!("client.tables.chunk");
        let before = traffic(chan);
        chan.send_blocks(chunk)?;
        tally(
            &mut wire.tables,
            &wire_metrics::TABLES,
            traffic(chan) - before,
        );
    }
    let label_bits = client_stream_epilogue(chan, &cycle.output_decode, wire)?;
    Ok((label_bits, ot_end_s))
}

/// Streams one cycle garbled **on the fly**: prologue from the freshly
/// assigned input labels, then garble-a-chunk / send-a-chunk until the
/// gate walk completes — at no point does more than one chunk of tables
/// exist on this side. Returns the decoded label bits, the OT-send end,
/// and the chunk-streaming window.
#[allow(clippy::too_many_arguments)]
fn client_cycle_streamed_live<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    ot: &mut ExtSender,
    garbler: &mut Garbler<'_>,
    rng: &mut R,
    g_bits: &[bool],
    initial_registers: Option<&[Block]>,
    chunk_gates: usize,
    wire: &mut WireBreakdown,
    peak: &mut PeakBytes,
    epoch: Instant,
) -> Result<(Vec<bool>, f64, PhaseSpan), ProtocolError> {
    let mut cycle: CycleGarbling<'_, '_> = garbler.begin_cycle(rng);
    let const_labels = cycle.constant_labels();
    let first_payload = initial_registers.map(|regs| (&const_labels, regs));
    let ot_end_s = client_stream_prologue(
        chan,
        ot,
        &cycle.garbler_active(g_bits),
        cycle.evaluator_input_labels(),
        first_payload,
        wire,
        epoch,
    )?;
    let stream_start_s = epoch.elapsed().as_secs_f64();
    // Umbrella span co-extensive with the recorded garble `PhaseSpan`:
    // `trace_view --check` reconciles the two measurements of this window.
    let stream = telemetry::span!("client.garble");
    let mut buf: Vec<Block> = Vec::with_capacity(2 * chunk_gates.min(1 << 20));
    loop {
        buf.clear();
        {
            let _s = telemetry::span!("client.garble.chunk");
            if cycle.garble_chunk(chunk_gates, &mut buf) == 0 {
                break;
            }
        }
        peak.observe((buf.len() * 16) as u64);
        let _s = telemetry::span!("client.tables.chunk");
        let before = traffic(chan);
        chan.send_blocks(&buf)?;
        tally(
            &mut wire.tables,
            &wire_metrics::TABLES,
            traffic(chan) - before,
        );
    }
    let output_decode = cycle.finish();
    stream.end();
    let stream_span = PhaseSpan {
        start_s: stream_start_s,
        end_s: epoch.elapsed().as_secs_f64(),
    };
    let label_bits = client_stream_epilogue(chan, &output_decode, wire)?;
    Ok((label_bits, ot_end_s, stream_span))
}

impl ClientSession {
    /// Builds the client half for one compiled circuit.
    pub fn new(compiled: Arc<Compiled>, cfg: &InferenceConfig) -> ClientSession {
        ClientSession {
            compiled,
            cfg: cfg.clone(),
        }
    }

    /// Runs the one-time base-OT setup (IKNP sender side), generating the
    /// keypairs on the spot.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    pub fn setup<C: Channel>(
        &self,
        chan: &mut C,
        epoch: Instant,
    ) -> Result<ClientSetup, ProtocolError> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xa11ce);
        let pre = SenderPrecomp::generate_with(&self.cfg.group, &mut rng, self.cfg.pool());
        self.setup_with(chan, pre, epoch)
    }

    /// Runs the base-OT setup with offline-generated [`SenderPrecomp`]
    /// material — only the three batched flights stay on the wire path.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    pub fn setup_with<C: Channel>(
        &self,
        chan: &mut C,
        pre: SenderPrecomp,
        epoch: Instant,
    ) -> Result<ClientSetup, ProtocolError> {
        let start_s = epoch.elapsed().as_secs_f64();
        let _s = telemetry::span!("client.base_ot");
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let ot = ExtSender::setup_with_pool(chan, pre, self.cfg.pool())?;
        let sent = chan.bytes_sent() - sent0;
        let received = chan.bytes_received() - recv0;
        wire_metrics::BASE_OT.add(sent + received);
        wire_metrics::SENT.add(sent);
        wire_metrics::RECEIVED.add(received);
        Ok(ClientSetup {
            ot,
            sent,
            received,
            span: PhaseSpan {
                start_s,
                end_s: epoch.elapsed().as_secs_f64(),
            },
        })
    }

    /// Runs one **online** inference over an established setup. The
    /// [`MaterialSource`] decides where tables come from (pre-garbled
    /// offline, or garbled live while streaming); the session's
    /// `chunk_gates` config decides how they travel:
    ///
    /// * `chunk_gates == 0` — **buffered**: each cycle's whole table
    ///   stream is one send, in the classic order (tables → labels → OT).
    /// * `chunk_gates > 0` — **streamed**: labels and OT go first, then
    ///   the tables in chunks of `chunk_gates` non-free gates, so the
    ///   evaluator works while later chunks (and, with a live source, the
    ///   garbling itself) are still in flight. Chunk boundaries are
    ///   deterministic from the circuit and the agreed `chunk_gates`, so
    ///   streaming adds **zero** wire bytes over the buffered path.
    ///
    /// The setup is reusable: call again with a fresh source for the next
    /// request on the same connection. The outcome's `wire.base_ot` is
    /// zero — setup traffic is accounted once, by the [`ClientSetup`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    ///
    /// # Panics
    ///
    /// Panics if the source's cycle count mismatches
    /// `garbler_bits_per_cycle`, or either is empty.
    pub fn run_online<C: Channel>(
        &self,
        chan: &mut C,
        setup: &mut ClientSetup,
        source: impl Into<MaterialSource>,
        garbler_bits_per_cycle: &[Vec<bool>],
        epoch: Instant,
    ) -> Result<ClientOutcome, ProtocolError> {
        let source = source.into();
        assert!(
            !garbler_bits_per_cycle.is_empty(),
            "need at least one cycle"
        );
        assert_eq!(
            source.num_cycles(),
            garbler_bits_per_cycle.len(),
            "material cycles must match input cycles"
        );
        let chunk_gates = self.cfg.chunk_gates;
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let mut wire = WireBreakdown::default();
        let mut peak = PeakBytes::default();
        let mut cycles = Vec::with_capacity(garbler_bits_per_cycle.len());
        let mut cycle_labels = Vec::with_capacity(garbler_bits_per_cycle.len());
        match source {
            MaterialSource::Precomputed(material) => {
                // The whole material is resident for the run's duration;
                // cycles are dropped as they ship.
                peak.alloc(material.table_bytes());
                let initial_registers = material.initial_registers;
                for (i, (cycle, g_bits)) in material
                    .cycles
                    .into_iter()
                    .zip(garbler_bits_per_cycle)
                    .enumerate()
                {
                    let t0 = epoch.elapsed().as_secs_f64();
                    let first_payload =
                        (i == 0).then_some((&cycle.constant_labels, initial_registers.as_slice()));
                    let (label_bits, ot_end_s) = if chunk_gates == 0 {
                        client_cycle(
                            chan,
                            &mut setup.ot,
                            &cycle,
                            g_bits,
                            first_payload,
                            &mut wire,
                            epoch,
                        )?
                    } else {
                        client_cycle_streamed_ready(
                            chan,
                            &mut setup.ot,
                            &cycle,
                            g_bits,
                            first_payload,
                            chunk_gates,
                            &mut wire,
                            epoch,
                        )?
                    };
                    cycle_labels.push(self.compiled.decode_label(&label_bits));
                    // Zero-width garble span: the garbling happened offline.
                    cycles.push((
                        PhaseSpan {
                            start_s: t0,
                            end_s: t0,
                        },
                        PhaseSpan {
                            start_s: t0,
                            end_s: ot_end_s,
                        },
                    ));
                    peak.free((cycle.tables.len() * 16) as u64);
                }
            }
            MaterialSource::Live { n_cycles: _, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut garbler =
                    Garbler::new(&self.compiled.circuit, &mut rng).with_pool(self.cfg.pool());
                // Must be read before the first cycle garbles: garbling
                // latches the register labels forward to the next cycle.
                let initial_registers = garbler.initial_register_labels();
                for (i, g_bits) in garbler_bits_per_cycle.iter().enumerate() {
                    let t0 = epoch.elapsed().as_secs_f64();
                    if chunk_gates == 0 {
                        let garble_span = telemetry::span!("client.garble");
                        let cycle = garbler.garble_cycle(&mut rng);
                        garble_span.end();
                        peak.observe((cycle.tables.len() * 16) as u64);
                        let t1 = epoch.elapsed().as_secs_f64();
                        let first_payload = (i == 0)
                            .then_some((&cycle.constant_labels, initial_registers.as_slice()));
                        let (label_bits, ot_end_s) = client_cycle(
                            chan,
                            &mut setup.ot,
                            &cycle,
                            g_bits,
                            first_payload,
                            &mut wire,
                            epoch,
                        )?;
                        cycle_labels.push(self.compiled.decode_label(&label_bits));
                        cycles.push((
                            PhaseSpan {
                                start_s: t0,
                                end_s: t1,
                            },
                            PhaseSpan {
                                start_s: t1,
                                end_s: ot_end_s,
                            },
                        ));
                    } else {
                        let (label_bits, ot_end_s, stream_span) = client_cycle_streamed_live(
                            chan,
                            &mut setup.ot,
                            &mut garbler,
                            &mut rng,
                            g_bits,
                            (i == 0).then_some(initial_registers.as_slice()),
                            chunk_gates,
                            &mut wire,
                            &mut peak,
                            epoch,
                        )?;
                        cycle_labels.push(self.compiled.decode_label(&label_bits));
                        // The garble span is the chunk-streaming window
                        // (garbling and transfer interleave by design);
                        // the OT span precedes it in the streamed order.
                        cycles.push((
                            stream_span,
                            PhaseSpan {
                                start_s: t0,
                                end_s: ot_end_s,
                            },
                        ));
                    }
                }
            }
        }
        chan.flush()?;
        let sent = chan.bytes_sent() - sent0;
        let received = chan.bytes_received() - recv0;
        debug_assert_eq!(
            wire.total(),
            sent + received,
            "breakdown must cover all online traffic"
        );
        wire_metrics::SENT.add(sent);
        wire_metrics::RECEIVED.add(received);
        Ok(ClientOutcome {
            label: *cycle_labels.last().expect("at least one cycle"),
            cycle_labels,
            sent,
            received,
            wire,
            ot_setup: setup.span,
            cycles,
            peak_material_bytes: peak.peak,
        })
    }

    /// Runs the full client side over any channel: base-OT setup, then per
    /// cycle garble → ship tables/labels → OT → decode returned colors
    /// (the garbling of cycle `c+1` overlaps the server's evaluation of
    /// cycle `c`, the Fig. 5 pipelining). With `chunk_gates > 0` each
    /// cycle itself streams: garble a chunk, send a chunk — garbling,
    /// transfer, and the peer's evaluation overlap *within* a cycle, and
    /// at most one chunk of tables is ever resident.
    ///
    /// Composes [`ClientSession::setup`] with a live-garbling
    /// [`ClientSession::run_online`], which is what keeps the single-shot
    /// and the split serving paths wire-compatible.
    ///
    /// `epoch` anchors the recorded [`PhaseSpan`]s; in-process runners
    /// share one epoch across both parties to get the Fig. 5 overlap.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    ///
    /// # Panics
    ///
    /// Panics if `garbler_bits_per_cycle` is empty or a cycle's bit count
    /// mismatches the circuit's garbler arity.
    pub fn run<C: Channel>(
        &self,
        chan: &mut C,
        garbler_bits_per_cycle: &[Vec<bool>],
        epoch: Instant,
    ) -> Result<ClientOutcome, ProtocolError> {
        assert!(
            !garbler_bits_per_cycle.is_empty(),
            "need at least one cycle"
        );
        let mut setup = self.setup(chan, epoch)?;
        let mut out = self.run_online(
            chan,
            &mut setup,
            MaterialSource::Live {
                n_cycles: garbler_bits_per_cycle.len(),
                seed: self.cfg.seed ^ 0x9a4b1e,
            },
            garbler_bits_per_cycle,
            epoch,
        )?;
        out.wire.base_ot = setup.base_ot_bytes();
        out.sent += setup.sent;
        out.received += setup.received;
        Ok(out)
    }
}

/// The evaluating party (Bob / the cloud server of the paper).
#[derive(Debug)]
pub struct ServerSession {
    compiled: Arc<Compiled>,
    cfg: InferenceConfig,
}

impl ServerSession {
    /// Builds the server half for one compiled circuit.
    pub fn new(compiled: Arc<Compiled>, cfg: &InferenceConfig) -> ServerSession {
        ServerSession {
            compiled,
            cfg: cfg.clone(),
        }
    }

    /// Runs the one-time base-OT setup (IKNP receiver side).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    pub fn setup<C: Channel>(&self, chan: &mut C) -> Result<ServerSetup, ProtocolError> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xb0b);
        let _s = telemetry::span!("server.base_ot");
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let ot = ExtReceiver::setup_with_pool(chan, &self.cfg.group, &mut rng, self.cfg.pool())?;
        let sent = chan.bytes_sent() - sent0;
        let received = chan.bytes_received() - recv0;
        wire_metrics::BASE_OT.add(sent + received);
        wire_metrics::SENT.add(sent);
        wire_metrics::RECEIVED.add(received);
        Ok(ServerSetup { ot, sent, received })
    }

    /// Runs one **online** inference over an established setup. With
    /// `chunk_gates == 0` (buffered): receive a cycle's whole table
    /// stream → labels → OT → evaluate. With `chunk_gates > 0`
    /// (streamed): labels and OT first, then consume the tables chunk by
    /// chunk as they arrive, evaluating the gates each chunk unblocks —
    /// peak resident material drops from O(circuit) to O(chunk). Chunk
    /// boundaries are computed from the circuit's non-free gate count and
    /// the agreed `chunk_gates`, so no framing bytes are added.
    ///
    /// The setup is reusable across requests on one connection; each call
    /// expects the peer to stream fresh garbled material. The outcome's
    /// `wire.base_ot` is zero — setup traffic is accounted once, by the
    /// [`ServerSetup`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    ///
    /// # Panics
    ///
    /// Panics if `evaluator_bits_per_cycle` is empty or a cycle's bit
    /// count mismatches the circuit's evaluator arity.
    pub fn run_online<C: Channel>(
        &self,
        chan: &mut C,
        setup: &mut ServerSetup,
        evaluator_bits_per_cycle: &[Vec<bool>],
        epoch: Instant,
    ) -> Result<ServerOutcome, ProtocolError> {
        assert!(
            !evaluator_bits_per_cycle.is_empty(),
            "need at least one cycle"
        );
        let c = &self.compiled.circuit;
        let chunk_gates = self.cfg.chunk_gates;
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let mut wire = WireBreakdown::default();
        let mut peak = PeakBytes::default();

        let first_labels = telemetry::span!("server.input_labels");
        let before = traffic(chan);
        let const0 = chan.recv_block()?;
        let const1 = chan.recv_block()?;
        let init_regs = chan.recv_blocks(c.registers().len())?;
        tally(
            &mut wire.input_labels,
            &wire_metrics::INPUT_LABELS,
            traffic(chan) - before,
        );
        first_labels.end();
        let mut evaluator = Evaluator::new(c).with_pool(self.cfg.pool());
        evaluator.set_constant_labels(const0, const1);
        evaluator.set_initial_registers(init_regs);
        let nonfree = c.nonfree_gate_count();
        let no_decode = vec![false; c.outputs().len()];
        let mut evals = Vec::with_capacity(evaluator_bits_per_cycle.len());
        for choice_bits in evaluator_bits_per_cycle {
            let colors;
            let span;
            if chunk_gates == 0 {
                let tables;
                {
                    let _s = telemetry::span!("server.tables");
                    let before = traffic(chan);
                    peak.alloc((2 * nonfree * 16) as u64);
                    tables = chan.recv_blocks(2 * nonfree)?;
                    tally(
                        &mut wire.tables,
                        &wire_metrics::TABLES,
                        traffic(chan) - before,
                    );
                }
                let g_labels;
                {
                    let _s = telemetry::span!("server.input_labels");
                    let before = traffic(chan);
                    g_labels = chan.recv_blocks(c.garbler_inputs().len())?;
                    tally(
                        &mut wire.input_labels,
                        &wire_metrics::INPUT_LABELS,
                        traffic(chan) - before,
                    );
                }
                let e_labels;
                {
                    let _s = telemetry::span!("server.ot_ext");
                    let before = traffic(chan);
                    e_labels = setup.ot.receive(chan, choice_bits)?;
                    tally(
                        &mut wire.ot_ext,
                        &wire_metrics::OT_EXT,
                        traffic(chan) - before,
                    );
                }
                let t0 = epoch.elapsed().as_secs_f64();
                let eval_span = telemetry::span!("server.eval");
                colors = evaluator.eval_cycle(&tables, &g_labels, &e_labels, &no_decode);
                eval_span.end();
                let t1 = epoch.elapsed().as_secs_f64();
                drop(tables);
                peak.free((2 * nonfree * 16) as u64);
                span = PhaseSpan {
                    start_s: t0,
                    end_s: t1,
                };
            } else {
                // Streamed order: everything the gate walk needs arrives
                // before the first chunk.
                let g_labels;
                {
                    let _s = telemetry::span!("server.input_labels");
                    let before = traffic(chan);
                    g_labels = chan.recv_blocks(c.garbler_inputs().len())?;
                    tally(
                        &mut wire.input_labels,
                        &wire_metrics::INPUT_LABELS,
                        traffic(chan) - before,
                    );
                }
                let e_labels;
                {
                    let _s = telemetry::span!("server.ot_ext");
                    let before = traffic(chan);
                    e_labels = setup.ot.receive(chan, choice_bits)?;
                    tally(
                        &mut wire.ot_ext,
                        &wire_metrics::OT_EXT,
                        traffic(chan) - before,
                    );
                }
                let t0 = epoch.elapsed().as_secs_f64();
                // Umbrella span co-extensive with the recorded eval
                // `PhaseSpan` (it includes table transfer time — the
                // interleaving is the point of streaming).
                let eval_span = telemetry::span!("server.eval");
                let mut cycle = evaluator.begin_cycle(&g_labels, &e_labels);
                let mut remaining = nonfree;
                while remaining > 0 {
                    let k = remaining.min(chunk_gates);
                    let _s = telemetry::span!("server.eval.chunk");
                    let before = traffic(chan);
                    let chunk = chan.recv_blocks(2 * k)?;
                    tally(
                        &mut wire.tables,
                        &wire_metrics::TABLES,
                        traffic(chan) - before,
                    );
                    peak.observe((chunk.len() * 16) as u64);
                    cycle.feed(&chunk);
                    remaining -= k;
                }
                colors = cycle.finish(&no_decode);
                eval_span.end();
                span = PhaseSpan {
                    start_s: t0,
                    end_s: epoch.elapsed().as_secs_f64(),
                };
            }
            let before = traffic(chan);
            chan.send_bits(&colors)?;
            tally(
                &mut wire.output_bits,
                &wire_metrics::OUTPUT_BITS,
                traffic(chan) - before,
            );
            evals.push(span);
        }
        // The final color bits are the last thing on the wire: without
        // this flush a buffered transport would strand them and hang the
        // client's last receive.
        chan.flush()?;
        let sent = chan.bytes_sent() - sent0;
        let received = chan.bytes_received() - recv0;
        debug_assert_eq!(
            wire.total(),
            sent + received,
            "breakdown must cover all online traffic"
        );
        wire_metrics::SENT.add(sent);
        wire_metrics::RECEIVED.add(received);
        Ok(ServerOutcome {
            sent,
            received,
            wire,
            evals,
            peak_material_bytes: peak.peak,
        })
    }

    /// Runs the full server side over any channel: base-OT setup, then per
    /// cycle receive tables/labels → OT-receive own labels → evaluate →
    /// return output colors.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    ///
    /// # Panics
    ///
    /// Panics if `evaluator_bits_per_cycle` is empty or a cycle's bit
    /// count mismatches the circuit's evaluator arity.
    pub fn run<C: Channel>(
        &self,
        chan: &mut C,
        evaluator_bits_per_cycle: &[Vec<bool>],
        epoch: Instant,
    ) -> Result<ServerOutcome, ProtocolError> {
        let mut setup = self.setup(chan)?;
        let (setup_sent, setup_received) = (setup.sent, setup.received);
        let mut out = self.run_online(chan, &mut setup, evaluator_bits_per_cycle, epoch)?;
        out.wire.base_ot = setup_sent + setup_received;
        out.sent += setup_sent;
        out.received += setup_received;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use deepsecure_fixed::Format;
    use deepsecure_ot::channel::mem_pair;

    use crate::compile::{folded_mac, CompileOptions};

    use super::*;

    fn mac_compiled() -> Arc<Compiled> {
        Arc::new(Compiled {
            circuit: folded_mac(&CompileOptions::default()),
            weight_order: Vec::new(),
            format: Format::Q3_12,
        })
    }

    #[test]
    fn both_parties_report_the_same_breakdown() {
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();
        let (mut cc, mut cs) = mem_pair();
        let epoch = Instant::now();
        let server = ServerSession::new(Arc::clone(&compiled), &cfg);
        let e_bits = vec![vec![false; 16]; 2];
        let handle = std::thread::spawn(move || server.run(&mut cs, &e_bits, epoch));
        let client = ClientSession::new(Arc::clone(&compiled), &cfg);
        let g_bits = vec![vec![false; 17]; 2];
        let cout = client.run(&mut cc, &g_bits, epoch).unwrap();
        let sout = handle.join().unwrap().unwrap();
        // Same wire, observed from either end.
        assert_eq!(cout.wire, sout.wire);
        assert_eq!(cout.sent, sout.received);
        assert_eq!(cout.received, sout.sent);
        assert_eq!(cout.wire.total(), cout.sent + cout.received);
        assert!(cout.wire.tables > 0);
        assert!(cout.wire.base_ot > 0);
        assert!(cout.wire.ot_ext > 0);
        assert!(cout.wire.output_bits > 0);
        assert!(cout.wire.input_labels > 0);
    }

    #[test]
    fn session_deltas_exclude_pre_protocol_traffic() {
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();
        let (mut cc, mut cs) = mem_pair();
        let epoch = Instant::now();
        // A handshake before the sessions start must not be attributed to
        // the protocol.
        let server = ServerSession::new(Arc::clone(&compiled), &cfg);
        let handle = std::thread::spawn(move || {
            let hello = cs.recv(5).unwrap();
            assert_eq!(hello, b"hello");
            cs.send(b"again").unwrap();
            let e_bits = vec![vec![false; 16]];
            server.run(&mut cs, &e_bits, epoch).unwrap()
        });
        cc.send(b"hello").unwrap();
        assert_eq!(cc.recv(5).unwrap(), b"again");
        let client = ClientSession::new(Arc::clone(&compiled), &cfg);
        let cout = client.run(&mut cc, &[vec![false; 17]], epoch).unwrap();
        let sout = handle.join().unwrap();
        assert_eq!(cout.sent, cc.bytes_sent() - 5);
        assert_eq!(cout.wire, sout.wire);
    }

    #[test]
    fn split_setup_and_online_reuse_one_connection_for_many_requests() {
        // Two requests over one setup: the serving layer's shape. Each
        // request streams fresh offline-garbled material; the base OT
        // happens exactly once and appears in no request's breakdown.
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();
        let (mut cc, mut cs) = mem_pair();
        let epoch = Instant::now();
        const REQUESTS: usize = 2;

        let server = ServerSession::new(Arc::clone(&compiled), &cfg);
        let handle = std::thread::spawn(move || {
            let mut setup = server.setup(&mut cs).unwrap();
            let base = setup.base_ot_bytes();
            let outs: Vec<ServerOutcome> = (0..REQUESTS)
                .map(|_| {
                    let e_bits = vec![vec![false; 16]];
                    server
                        .run_online(&mut cs, &mut setup, &e_bits, epoch)
                        .unwrap()
                })
                .collect();
            (base, outs)
        });

        let client = ClientSession::new(Arc::clone(&compiled), &cfg);
        let mut setup = client.setup(&mut cc, epoch).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let couts: Vec<ClientOutcome> = (0..REQUESTS)
            .map(|_| {
                let material = GarbledMaterial::garble(&compiled, 1, &mut rng);
                assert_eq!(material.num_cycles(), 1);
                let g_bits = vec![vec![false; 17]];
                client
                    .run_online(&mut cc, &mut setup, material, &g_bits, epoch)
                    .unwrap()
            })
            .collect();
        let (server_base, souts) = handle.join().unwrap();

        assert_eq!(setup.base_ot_bytes(), server_base);
        assert!(server_base > 0, "setup must carry the base-OT traffic");
        for (cout, sout) in couts.iter().zip(&souts) {
            assert_eq!(cout.wire, sout.wire);
            assert_eq!(cout.wire.base_ot, 0, "base OT paid once, not per request");
            assert!(cout.wire.tables > 0);
            assert!(cout.wire.ot_ext > 0);
            // Zero-width garble spans: material came from offline garbling.
            for (garble, _) in &cout.cycles {
                assert_eq!(garble.duration_s(), 0.0);
            }
        }
        // Both requests moved identical byte counts (same circuit shape).
        assert_eq!(couts[0].wire, couts[1].wire);
    }

    #[test]
    fn base_ot_setup_is_three_flights_on_a_simulated_link() {
        use deepsecure_ot::sim::{NetModel, SimChannel};

        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();
        let (cc, cs) = mem_pair();
        let mut cc = SimChannel::new(cc, NetModel::ideal());
        let mut cs = SimChannel::new(cs, NetModel::ideal());
        let epoch = Instant::now();

        let counted_before = wire_metrics::BASE_OT.get();
        let server = ServerSession::new(Arc::clone(&compiled), &cfg);
        let handle = std::thread::spawn(move || {
            let setup = server.setup(&mut cs).unwrap();
            (setup.base_ot_bytes(), cs.turnarounds())
        });
        let client = ClientSession::new(Arc::clone(&compiled), &cfg);
        let setup = client.setup(&mut cc, epoch).unwrap();
        let (server_bytes, server_turnarounds) = handle.join().unwrap();

        // Batched base OT is three one-way flights. Each flight is received
        // exactly once, and on a strictly alternating link every receive is
        // a turnaround, so the two endpoints' turnaround counts sum to the
        // flight count: the first sender pays 1, the responder pays 2.
        let mut flights = [cc.turnarounds(), server_turnarounds];
        flights.sort_unstable();
        assert_eq!(flights, [1, 2], "batched base OT must stay 3 flights");

        // Both endpoints feed the process-global phase counter (sent +
        // received each), so one setup adds twice the per-party total.
        // Concurrent tests may add more in between, never less.
        assert_eq!(setup.base_ot_bytes(), server_bytes);
        assert!(
            wire_metrics::BASE_OT.get() - counted_before >= 2 * server_bytes,
            "wire_metrics::BASE_OT must observe the setup traffic"
        );
    }

    /// One full run over `mem_pair` with the given chunk setting.
    fn run_with_chunk(chunk_gates: usize, n_cycles: usize) -> (ClientOutcome, ServerOutcome) {
        let compiled = mac_compiled();
        let cfg = InferenceConfig {
            chunk_gates,
            ..InferenceConfig::default()
        };
        let (mut cc, mut cs) = mem_pair();
        let epoch = Instant::now();
        let server = ServerSession::new(Arc::clone(&compiled), &cfg);
        let e_bits = vec![vec![true; 16]; n_cycles];
        let handle = std::thread::spawn(move || server.run(&mut cs, &e_bits, epoch).unwrap());
        let client = ClientSession::new(Arc::clone(&compiled), &cfg);
        let g_bits = vec![vec![true; 17]; n_cycles];
        let cout = client.run(&mut cc, &g_bits, epoch).unwrap();
        let sout = handle.join().unwrap();
        assert_eq!(cout.wire, sout.wire, "parties disagree on the wire");
        (cout, sout)
    }

    #[test]
    fn streamed_run_is_wire_identical_to_buffered_per_phase() {
        // Chunk sizes: 1 gate, a small one, and one far larger than the
        // circuit (a single chunk) — every streamed variant must move
        // exactly the buffered bytes in every phase and decode the same
        // labels, single-cycle and multi-cycle (register latching).
        for n_cycles in [1usize, 3] {
            let (buffered, buf_s) = run_with_chunk(0, n_cycles);
            if n_cycles == 1 {
                assert_eq!(
                    buffered.peak_material_bytes, buffered.wire.tables,
                    "a buffered single-cycle client holds the whole stream"
                );
            }
            for chunk in [1usize, 7, 1 << 24] {
                let (streamed, str_s) = run_with_chunk(chunk, n_cycles);
                assert_eq!(streamed.cycle_labels, buffered.cycle_labels);
                assert_eq!(streamed.wire, buffered.wire, "chunk {chunk}");
                assert_eq!(streamed.sent, buffered.sent);
                assert_eq!(streamed.received, buffered.received);
                assert_eq!(str_s.wire, buf_s.wire);
                // O(chunk) resident: a small chunk beats the whole cycle.
                if chunk < 7_000 {
                    let per_cycle = buffered.wire.tables / n_cycles as u64;
                    assert!(
                        streamed.peak_material_bytes <= (2 * chunk * 16) as u64,
                        "client chunk {chunk}: peak {}",
                        streamed.peak_material_bytes
                    );
                    assert!(
                        str_s.peak_material_bytes < per_cycle,
                        "server chunk {chunk}: peak {} vs cycle {per_cycle}",
                        str_s.peak_material_bytes
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_online_run_with_precomputed_material_matches_buffered() {
        // The pool's precomputed path, streamed: same bytes per phase,
        // same label; the evaluator side still only holds O(chunk).
        let compiled = mac_compiled();
        let run = |chunk_gates: usize| {
            let cfg = InferenceConfig {
                chunk_gates,
                ..InferenceConfig::default()
            };
            let (mut cc, mut cs) = mem_pair();
            let epoch = Instant::now();
            let server = ServerSession::new(Arc::clone(&compiled), &cfg);
            let handle = std::thread::spawn(move || {
                let mut setup = server.setup(&mut cs).unwrap();
                server
                    .run_online(&mut cs, &mut setup, &[vec![true; 16]], epoch)
                    .unwrap()
            });
            let client = ClientSession::new(Arc::clone(&compiled), &cfg);
            let mut setup = client.setup(&mut cc, epoch).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let material = GarbledMaterial::garble(&compiled, 1, &mut rng);
            let total = material.table_bytes();
            let cout = client
                .run_online(&mut cc, &mut setup, material, &[vec![true; 17]], epoch)
                .unwrap();
            let sout = handle.join().unwrap();
            (cout, sout, total)
        };
        let (b_c, b_s, total) = run(0);
        let (s_c, s_s, _) = run(5);
        assert_eq!(s_c.label, b_c.label);
        assert_eq!(s_c.wire, b_c.wire);
        assert_eq!(s_s.wire, b_s.wire);
        // Client holds the whole precomputed material either way…
        assert_eq!(s_c.peak_material_bytes, total);
        assert_eq!(b_c.peak_material_bytes, total);
        // …but the streamed evaluator only ever holds one chunk.
        assert_eq!(b_s.peak_material_bytes, total);
        assert!(
            s_s.peak_material_bytes <= 5 * 32,
            "peak {}",
            s_s.peak_material_bytes
        );
    }

    #[test]
    fn multicore_run_is_wire_identical_to_sequential_per_phase() {
        // threads is a pure perf knob: the same seeds must move the same
        // per-phase wire bytes and decode the same labels at any worker
        // count, buffered and streamed.
        let run = |threads: usize, chunk_gates: usize| {
            let compiled = mac_compiled();
            let cfg = InferenceConfig {
                chunk_gates,
                threads,
                ..InferenceConfig::default()
            };
            let (mut cc, mut cs) = mem_pair();
            let epoch = Instant::now();
            let server = ServerSession::new(Arc::clone(&compiled), &cfg);
            let e_bits = vec![vec![true; 16]; 3];
            let handle = std::thread::spawn(move || server.run(&mut cs, &e_bits, epoch).unwrap());
            let client = ClientSession::new(Arc::clone(&compiled), &cfg);
            let g_bits = vec![vec![true; 17]; 3];
            let cout = client.run(&mut cc, &g_bits, epoch).unwrap();
            let sout = handle.join().unwrap();
            assert_eq!(cout.wire, sout.wire);
            (
                cout.cycle_labels.clone(),
                cout.wire,
                cout.sent,
                cout.received,
            )
        };
        for chunk_gates in [0usize, 5] {
            let seq = run(1, chunk_gates);
            for threads in [2usize, 4] {
                assert_eq!(run(threads, chunk_gates), seq, "chunk {chunk_gates}");
            }
        }
    }

    #[test]
    fn live_source_reproduces_run_labels_exactly() {
        // MaterialSource::Live with run()'s seed derivation must produce
        // the same garbling stream run() itself would — the property the
        // two-process --check replay relies on.
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();
        let seed = cfg.seed ^ 0x9a4b1e;
        let mut rng = StdRng::seed_from_u64(seed);
        let material = GarbledMaterial::garble(&compiled, 2, &mut rng);
        let source = MaterialSource::Live { n_cycles: 2, seed };
        assert_eq!(source.num_cycles(), material.num_cycles());
        let mut rng2 = StdRng::seed_from_u64(seed);
        let material2 = GarbledMaterial::garble(&compiled, 2, &mut rng2);
        assert_eq!(material.cycles[0].tables, material2.cycles[0].tables);
        assert_eq!(material.initial_registers, material2.initial_registers);
    }

    #[test]
    fn online_run_matches_full_run_byte_for_byte() {
        // The split path must be wire-compatible with run(): same label,
        // same per-phase bytes (base OT accounted in the setup instead).
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();

        let full = {
            let (mut cc, mut cs) = mem_pair();
            let epoch = Instant::now();
            let server = ServerSession::new(Arc::clone(&compiled), &cfg);
            let e_bits = vec![vec![true; 16]];
            let handle = std::thread::spawn(move || server.run(&mut cs, &e_bits, epoch).unwrap());
            let client = ClientSession::new(Arc::clone(&compiled), &cfg);
            let cout = client.run(&mut cc, &[vec![true; 17]], epoch).unwrap();
            handle.join().unwrap();
            cout
        };

        let split = {
            let (mut cc, mut cs) = mem_pair();
            let epoch = Instant::now();
            let server = ServerSession::new(Arc::clone(&compiled), &cfg);
            let handle = std::thread::spawn(move || {
                let mut setup = server.setup(&mut cs).unwrap();
                let e_bits = vec![vec![true; 16]];
                let out = server
                    .run_online(&mut cs, &mut setup, &e_bits, epoch)
                    .unwrap();
                (setup.base_ot_bytes(), out)
            });
            let client = ClientSession::new(Arc::clone(&compiled), &cfg);
            let mut setup = client.setup(&mut cc, epoch).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let material = GarbledMaterial::garble(&compiled, 1, &mut rng);
            let cout = client
                .run_online(&mut cc, &mut setup, material, &[vec![true; 17]], epoch)
                .unwrap();
            let (server_base, _sout) = handle.join().unwrap();
            (setup.base_ot_bytes(), server_base, cout)
        };

        let (client_base, server_base, cout) = split;
        assert_eq!(cout.label, full.label, "labels must agree across paths");
        assert_eq!(client_base, full.wire.base_ot);
        assert_eq!(server_base, full.wire.base_ot);
        assert_eq!(cout.wire.ot_ext, full.wire.ot_ext);
        assert_eq!(cout.wire.tables, full.wire.tables);
        assert_eq!(cout.wire.input_labels, full.wire.input_labels);
        assert_eq!(cout.wire.output_bits, full.wire.output_bits);
    }
}
