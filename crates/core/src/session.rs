//! Channel-generic party state machines for the Fig. 3 protocol.
//!
//! [`ClientSession`] (Alice: garbles, owns the data sample, decodes the
//! result) and [`ServerSession`] (Bob: evaluates, his DL parameters enter
//! through OT) are the two halves of `run_compiled`, factored out so the
//! *same* code runs as two threads over `mem_pair` (tests, benches), two
//! OS processes over [`TcpChannel`], or under a [`SimChannel`] link model
//! — the transport is a type parameter, never a fork in the protocol
//! logic.
//!
//! # Offline/online split
//!
//! DeepSecure's garbling is input-independent, so both halves also come
//! apart into a **setup** phase (base-OT / IKNP seeding, garbling) and an
//! **online** phase (OT extension + table streaming + evaluation):
//!
//! * [`GarbledMaterial::garble`] produces a run's tables and labels with
//!   no channel at all — a precompute pool can stockpile them.
//! * [`ClientSession::setup`] / [`ServerSession::setup`] run the one-time
//!   base-OT seeding on a fresh connection (the client side can feed it
//!   offline-generated [`SenderPrecomp`] keypairs via
//!   [`ClientSession::setup_with`]).
//! * [`ClientSession::run_online`] / [`ServerSession::run_online`] then
//!   execute one inference per call, **reusing** the setup across
//!   requests on the same connection — the serving layer's per-query hot
//!   path.
//!
//! [`ClientSession::run`] / [`ServerSession::run`] compose the pieces
//! back into the original single-shot behaviour.
//!
//! Sessions measure their own traffic as *deltas* of the channel's byte
//! counters, so pre-protocol traffic (e.g. the `two_party` handshake) is
//! never attributed to the protocol, and both parties' [`WireBreakdown`]s
//! describe the same wire regardless of transport.
//!
//! [`TcpChannel`]: deepsecure_ot::TcpChannel
//! [`SimChannel`]: deepsecure_ot::SimChannel

use std::sync::Arc;
use std::time::Instant;

use deepsecure_crypto::Block;
use deepsecure_garble::{Evaluator, GarbledCycle, Garbler};
use deepsecure_ot::channel::Channel;
use deepsecure_ot::ext::{ExtReceiver, ExtSender, SenderPrecomp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::compile::Compiled;
use crate::protocol::{InferenceConfig, PhaseSpan, ProtocolError};

/// Per-phase wire traffic of one protocol run, in bytes.
///
/// Each field counts **both directions** of its phase as observed from one
/// endpoint (sent + received deltas around the phase), so the two parties
/// report identical breakdowns and the fields sum to the total traffic of
/// the run. This is the measured decomposition behind the paper's
/// communication columns: garbled tables are the `α` term that dominates,
/// OT-extension the per-weight-bit term, base OT the fixed setup cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireBreakdown {
    /// One-time base-OT setup (public-key transfers seeding IKNP).
    pub base_ot: u64,
    /// IKNP OT-extension traffic (u-matrix + masked label pairs).
    pub ot_ext: u64,
    /// Garbled tables (client → server), the dominant `α` term.
    pub tables: u64,
    /// Active input labels: constants, initial registers, and the
    /// garbler's own input labels (client → server).
    pub input_labels: u64,
    /// Output color bits (server → client), length prefix included.
    pub output_bits: u64,
}

impl WireBreakdown {
    /// Total protocol traffic, both directions.
    pub fn total(&self) -> u64 {
        self.base_ot + self.ot_ext + self.tables + self.input_labels + self.output_bits
    }
}

impl std::ops::AddAssign for WireBreakdown {
    /// Field-wise accumulation — what server-level stats sum per request.
    fn add_assign(&mut self, rhs: WireBreakdown) {
        self.base_ot += rhs.base_ot;
        self.ot_ext += rhs.ot_ext;
        self.tables += rhs.tables;
        self.input_labels += rhs.input_labels;
        self.output_bits += rhs.output_bits;
    }
}

/// Sent + received — the phase-delta yardstick used by both sessions.
fn traffic<C: Channel>(chan: &C) -> u64 {
    chan.bytes_sent() + chan.bytes_received()
}

/// Input-independent garbled material for one protocol run: every cycle's
/// tables and labels plus the initial register labels — producible long
/// before the inputs (or even the peer) exist.
///
/// Consumed by [`ClientSession::run_online`]: wire labels are one-time
/// pads, so one material must never serve two runs.
pub struct GarbledMaterial {
    cycles: Vec<GarbledCycle>,
    initial_registers: Vec<Block>,
}

impl std::fmt::Debug for GarbledMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GarbledMaterial")
            .field("cycles", &self.cycles.len())
            .finish_non_exhaustive()
    }
}

impl GarbledMaterial {
    /// Garbles `n_cycles` clock cycles of the compiled circuit offline.
    pub fn garble<R: Rng + ?Sized>(
        compiled: &Compiled,
        n_cycles: usize,
        rng: &mut R,
    ) -> GarbledMaterial {
        let mut garbler = Garbler::new(&compiled.circuit, rng);
        // Must be read before the first garble_cycle: garbling latches the
        // register labels forward to the next cycle.
        let initial_registers = garbler.initial_register_labels();
        let cycles = (0..n_cycles).map(|_| garbler.garble_cycle(rng)).collect();
        GarbledMaterial {
            cycles,
            initial_registers,
        }
    }

    /// Number of clock cycles this material covers.
    pub fn num_cycles(&self) -> usize {
        self.cycles.len()
    }
}

/// A client session's completed base-OT setup: the live IKNP sender plus
/// the setup's traffic and timeline. Reused across every
/// [`ClientSession::run_online`] call on the same connection.
#[derive(Debug)]
pub struct ClientSetup {
    ot: ExtSender,
    /// Bytes this endpoint sent during setup.
    pub sent: u64,
    /// Bytes this endpoint received during setup.
    pub received: u64,
    /// Setup span (relative to the epoch passed in).
    pub span: PhaseSpan,
}

impl ClientSetup {
    /// Both directions of the base-OT setup — the `base_ot` wire term.
    pub fn base_ot_bytes(&self) -> u64 {
        self.sent + self.received
    }
}

/// A server session's completed base-OT setup (IKNP receiver side).
#[derive(Debug)]
pub struct ServerSetup {
    ot: ExtReceiver,
    /// Bytes this endpoint sent during setup.
    pub sent: u64,
    /// Bytes this endpoint received during setup.
    pub received: u64,
}

impl ServerSetup {
    /// Both directions of the base-OT setup — the `base_ot` wire term.
    pub fn base_ot_bytes(&self) -> u64 {
        self.sent + self.received
    }
}

/// What the client knows after a run: the decoded result plus its side of
/// the timeline and traffic accounting.
#[derive(Clone, Debug)]
pub struct ClientOutcome {
    /// Decoded inference label of the final cycle.
    pub label: usize,
    /// Decoded output value of every cycle.
    pub cycle_labels: Vec<usize>,
    /// Bytes this session sent (delta over the run).
    pub sent: u64,
    /// Bytes this session received (delta over the run).
    pub received: u64,
    /// Per-phase wire traffic (`wire.tables` is the `α` material term).
    /// Online-only runs report `base_ot == 0`; the setup accounts for it.
    pub wire: WireBreakdown,
    /// Base-OT setup span (relative to the epoch passed to `run`).
    pub ot_setup: PhaseSpan,
    /// Per-cycle `(garble, ot+transfer)` spans. Online-only runs report
    /// zero-width garble spans (the garbling happened offline).
    pub cycles: Vec<(PhaseSpan, PhaseSpan)>,
}

/// What the server knows after a run: timings and traffic, never outputs.
#[derive(Clone, Debug)]
pub struct ServerOutcome {
    /// Bytes this session sent (delta over the run).
    pub sent: u64,
    /// Bytes this session received (delta over the run).
    pub received: u64,
    /// Per-phase wire traffic (mirrors the client's view). Online-only
    /// runs report `base_ot == 0`; the setup accounts for it.
    pub wire: WireBreakdown,
    /// Per-cycle evaluation spans.
    pub evals: Vec<PhaseSpan>,
}

/// The garbling party (Alice / the client of the paper).
#[derive(Debug)]
pub struct ClientSession {
    compiled: Arc<Compiled>,
    cfg: InferenceConfig,
}

/// Streams one garbled cycle (tables, active labels, OT extension) and
/// decodes the returned color bits — the per-cycle online hot path shared
/// by [`ClientSession::run`] and [`ClientSession::run_online`].
///
/// Returns the decoded label bits plus the instant (relative to `epoch`)
/// at which this side's *sending* work ended — i.e. after the OT send,
/// before blocking on the returned colors — so the recorded OT span
/// excludes the server's evaluation time (the Fig. 5 convention).
fn client_cycle<C: Channel>(
    chan: &mut C,
    ot: &mut ExtSender,
    cycle: &GarbledCycle,
    g_bits: &[bool],
    first_payload: Option<(&[Block; 2], &[Block])>,
    wire: &mut WireBreakdown,
    epoch: Instant,
) -> Result<(Vec<bool>, f64), ProtocolError> {
    if let Some((const_labels, initial_registers)) = first_payload {
        let before = traffic(chan);
        chan.send_block(const_labels[0])?;
        chan.send_block(const_labels[1])?;
        chan.send_blocks(initial_registers)?;
        wire.input_labels += traffic(chan) - before;
    }
    let before = traffic(chan);
    chan.send_blocks(&cycle.tables)?;
    wire.tables += traffic(chan) - before;
    let before = traffic(chan);
    chan.send_blocks(&cycle.garbler_active(g_bits))?;
    wire.input_labels += traffic(chan) - before;
    let before = traffic(chan);
    ot.send(chan, &cycle.evaluator_input_labels)?;
    wire.ot_ext += traffic(chan) - before;
    let ot_end_s = epoch.elapsed().as_secs_f64();
    let before = traffic(chan);
    let colors = chan.recv_bits()?;
    wire.output_bits += traffic(chan) - before;
    let label_bits = colors
        .iter()
        .zip(&cycle.output_decode)
        .map(|(&col, &d)| col ^ d)
        .collect();
    Ok((label_bits, ot_end_s))
}

impl ClientSession {
    /// Builds the client half for one compiled circuit.
    pub fn new(compiled: Arc<Compiled>, cfg: &InferenceConfig) -> ClientSession {
        ClientSession {
            compiled,
            cfg: cfg.clone(),
        }
    }

    /// Runs the one-time base-OT setup (IKNP sender side), generating the
    /// keypairs on the spot.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    pub fn setup<C: Channel>(
        &self,
        chan: &mut C,
        epoch: Instant,
    ) -> Result<ClientSetup, ProtocolError> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xa11ce);
        let pre = SenderPrecomp::generate(&self.cfg.group, &mut rng);
        self.setup_with(chan, pre, epoch)
    }

    /// Runs the base-OT setup with offline-generated [`SenderPrecomp`]
    /// material — only the three batched flights stay on the wire path.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    pub fn setup_with<C: Channel>(
        &self,
        chan: &mut C,
        pre: SenderPrecomp,
        epoch: Instant,
    ) -> Result<ClientSetup, ProtocolError> {
        let start_s = epoch.elapsed().as_secs_f64();
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let ot = ExtSender::setup_with(chan, pre)?;
        Ok(ClientSetup {
            ot,
            sent: chan.bytes_sent() - sent0,
            received: chan.bytes_received() - recv0,
            span: PhaseSpan {
                start_s,
                end_s: epoch.elapsed().as_secs_f64(),
            },
        })
    }

    /// Runs one **online** inference over an established setup, streaming
    /// pre-garbled material: table transfer + OT extension + decode, with
    /// no garbling and no public-key operations on the critical path. The
    /// setup is reusable: call again with fresh material for the next
    /// request on the same connection.
    ///
    /// The outcome's `wire.base_ot` is zero — setup traffic is accounted
    /// once, by the [`ClientSetup`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    ///
    /// # Panics
    ///
    /// Panics if the material's cycle count mismatches
    /// `garbler_bits_per_cycle`, or either is empty.
    pub fn run_online<C: Channel>(
        &self,
        chan: &mut C,
        setup: &mut ClientSetup,
        material: GarbledMaterial,
        garbler_bits_per_cycle: &[Vec<bool>],
        epoch: Instant,
    ) -> Result<ClientOutcome, ProtocolError> {
        assert!(
            !garbler_bits_per_cycle.is_empty(),
            "need at least one cycle"
        );
        assert_eq!(
            material.cycles.len(),
            garbler_bits_per_cycle.len(),
            "material cycles must match input cycles"
        );
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let mut wire = WireBreakdown::default();
        let mut cycles = Vec::with_capacity(garbler_bits_per_cycle.len());
        let mut cycle_labels = Vec::with_capacity(garbler_bits_per_cycle.len());
        for (i, (cycle, g_bits)) in material
            .cycles
            .iter()
            .zip(garbler_bits_per_cycle)
            .enumerate()
        {
            let t0 = epoch.elapsed().as_secs_f64();
            let first_payload = (i == 0).then_some((
                &cycle.constant_labels,
                material.initial_registers.as_slice(),
            ));
            let (label_bits, ot_end_s) = client_cycle(
                chan,
                &mut setup.ot,
                cycle,
                g_bits,
                first_payload,
                &mut wire,
                epoch,
            )?;
            cycle_labels.push(self.compiled.decode_label(&label_bits));
            // Zero-width garble span: the garbling happened offline.
            cycles.push((
                PhaseSpan {
                    start_s: t0,
                    end_s: t0,
                },
                PhaseSpan {
                    start_s: t0,
                    end_s: ot_end_s,
                },
            ));
        }
        chan.flush()?;
        let sent = chan.bytes_sent() - sent0;
        let received = chan.bytes_received() - recv0;
        debug_assert_eq!(
            wire.total(),
            sent + received,
            "breakdown must cover all online traffic"
        );
        Ok(ClientOutcome {
            label: *cycle_labels.last().expect("at least one cycle"),
            cycle_labels,
            sent,
            received,
            wire,
            ot_setup: setup.span,
            cycles,
        })
    }

    /// Runs the full client side over any channel: base-OT setup, then per
    /// cycle garble → send tables/labels → OT → decode returned colors
    /// (the garbling of cycle `c+1` overlaps the server's evaluation of
    /// cycle `c`, the Fig. 5 pipelining).
    ///
    /// `epoch` anchors the recorded [`PhaseSpan`]s; in-process runners
    /// share one epoch across both parties to get the Fig. 5 overlap.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    ///
    /// # Panics
    ///
    /// Panics if `garbler_bits_per_cycle` is empty or a cycle's bit count
    /// mismatches the circuit's garbler arity.
    pub fn run<C: Channel>(
        &self,
        chan: &mut C,
        garbler_bits_per_cycle: &[Vec<bool>],
        epoch: Instant,
    ) -> Result<ClientOutcome, ProtocolError> {
        assert!(
            !garbler_bits_per_cycle.is_empty(),
            "need at least one cycle"
        );
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let mut setup = self.setup(chan, epoch)?;
        let mut wire = WireBreakdown {
            base_ot: setup.base_ot_bytes(),
            ..WireBreakdown::default()
        };
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x9a4b1e);
        let mut garbler = Garbler::new(&self.compiled.circuit, &mut rng);
        // Must be read before the first garble_cycle: garbling latches the
        // register labels forward to the next cycle.
        let initial_registers = garbler.initial_register_labels();
        let mut cycles = Vec::with_capacity(garbler_bits_per_cycle.len());
        let mut cycle_labels = Vec::with_capacity(garbler_bits_per_cycle.len());
        let mut first = true;
        for g_bits in garbler_bits_per_cycle {
            let t0 = epoch.elapsed().as_secs_f64();
            let cycle = garbler.garble_cycle(&mut rng);
            let t1 = epoch.elapsed().as_secs_f64();
            let first_payload =
                first.then_some((&cycle.constant_labels, initial_registers.as_slice()));
            first = false;
            let (label_bits, ot_end_s) = client_cycle(
                chan,
                &mut setup.ot,
                &cycle,
                g_bits,
                first_payload,
                &mut wire,
                epoch,
            )?;
            cycle_labels.push(self.compiled.decode_label(&label_bits));
            cycles.push((
                PhaseSpan {
                    start_s: t0,
                    end_s: t1,
                },
                PhaseSpan {
                    start_s: t1,
                    end_s: ot_end_s,
                },
            ));
        }
        chan.flush()?;
        let sent = chan.bytes_sent() - sent0;
        let received = chan.bytes_received() - recv0;
        debug_assert_eq!(
            wire.total(),
            sent + received,
            "breakdown must cover all traffic"
        );
        Ok(ClientOutcome {
            label: *cycle_labels.last().expect("at least one cycle"),
            cycle_labels,
            sent,
            received,
            wire,
            ot_setup: setup.span,
            cycles,
        })
    }
}

/// The evaluating party (Bob / the cloud server of the paper).
#[derive(Debug)]
pub struct ServerSession {
    compiled: Arc<Compiled>,
    cfg: InferenceConfig,
}

impl ServerSession {
    /// Builds the server half for one compiled circuit.
    pub fn new(compiled: Arc<Compiled>, cfg: &InferenceConfig) -> ServerSession {
        ServerSession {
            compiled,
            cfg: cfg.clone(),
        }
    }

    /// Runs the one-time base-OT setup (IKNP receiver side).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    pub fn setup<C: Channel>(&self, chan: &mut C) -> Result<ServerSetup, ProtocolError> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xb0b);
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let ot = ExtReceiver::setup(chan, &self.cfg.group, &mut rng)?;
        Ok(ServerSetup {
            ot,
            sent: chan.bytes_sent() - sent0,
            received: chan.bytes_received() - recv0,
        })
    }

    /// Runs one **online** inference over an established setup: receive
    /// tables/labels → OT-receive own labels → evaluate → return output
    /// colors. The setup is reusable across requests on one connection;
    /// each call expects the peer to stream fresh garbled material.
    ///
    /// The outcome's `wire.base_ot` is zero — setup traffic is accounted
    /// once, by the [`ServerSetup`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    ///
    /// # Panics
    ///
    /// Panics if `evaluator_bits_per_cycle` is empty or a cycle's bit
    /// count mismatches the circuit's evaluator arity.
    pub fn run_online<C: Channel>(
        &self,
        chan: &mut C,
        setup: &mut ServerSetup,
        evaluator_bits_per_cycle: &[Vec<bool>],
        epoch: Instant,
    ) -> Result<ServerOutcome, ProtocolError> {
        assert!(
            !evaluator_bits_per_cycle.is_empty(),
            "need at least one cycle"
        );
        let c = &self.compiled.circuit;
        let sent0 = chan.bytes_sent();
        let recv0 = chan.bytes_received();
        let mut wire = WireBreakdown::default();

        let before = traffic(chan);
        let const0 = chan.recv_block()?;
        let const1 = chan.recv_block()?;
        let init_regs = chan.recv_blocks(c.registers().len())?;
        wire.input_labels += traffic(chan) - before;
        let mut evaluator = Evaluator::new(c);
        evaluator.set_constant_labels(const0, const1);
        evaluator.set_initial_registers(init_regs);
        let n_tables = 2 * c.nonfree_gate_count();
        let no_decode = vec![false; c.outputs().len()];
        let mut evals = Vec::with_capacity(evaluator_bits_per_cycle.len());
        for choice_bits in evaluator_bits_per_cycle {
            let before = traffic(chan);
            let tables = chan.recv_blocks(n_tables)?;
            wire.tables += traffic(chan) - before;
            let before = traffic(chan);
            let g_labels = chan.recv_blocks(c.garbler_inputs().len())?;
            wire.input_labels += traffic(chan) - before;
            let before = traffic(chan);
            let e_labels = setup.ot.receive(chan, choice_bits)?;
            wire.ot_ext += traffic(chan) - before;
            let t0 = epoch.elapsed().as_secs_f64();
            let colors = evaluator.eval_cycle(&tables, &g_labels, &e_labels, &no_decode);
            let t1 = epoch.elapsed().as_secs_f64();
            let before = traffic(chan);
            chan.send_bits(&colors)?;
            wire.output_bits += traffic(chan) - before;
            evals.push(PhaseSpan {
                start_s: t0,
                end_s: t1,
            });
        }
        // The final color bits are the last thing on the wire: without
        // this flush a buffered transport would strand them and hang the
        // client's last receive.
        chan.flush()?;
        let sent = chan.bytes_sent() - sent0;
        let received = chan.bytes_received() - recv0;
        debug_assert_eq!(
            wire.total(),
            sent + received,
            "breakdown must cover all online traffic"
        );
        Ok(ServerOutcome {
            sent,
            received,
            wire,
            evals,
        })
    }

    /// Runs the full server side over any channel: base-OT setup, then per
    /// cycle receive tables/labels → OT-receive own labels → evaluate →
    /// return output colors.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on channel/OT failure.
    ///
    /// # Panics
    ///
    /// Panics if `evaluator_bits_per_cycle` is empty or a cycle's bit
    /// count mismatches the circuit's evaluator arity.
    pub fn run<C: Channel>(
        &self,
        chan: &mut C,
        evaluator_bits_per_cycle: &[Vec<bool>],
        epoch: Instant,
    ) -> Result<ServerOutcome, ProtocolError> {
        let mut setup = self.setup(chan)?;
        let (setup_sent, setup_received) = (setup.sent, setup.received);
        let mut out = self.run_online(chan, &mut setup, evaluator_bits_per_cycle, epoch)?;
        out.wire.base_ot = setup_sent + setup_received;
        out.sent += setup_sent;
        out.received += setup_received;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use deepsecure_fixed::Format;
    use deepsecure_ot::channel::mem_pair;

    use crate::compile::{folded_mac, CompileOptions};

    use super::*;

    fn mac_compiled() -> Arc<Compiled> {
        Arc::new(Compiled {
            circuit: folded_mac(&CompileOptions::default()),
            weight_order: Vec::new(),
            format: Format::Q3_12,
        })
    }

    #[test]
    fn both_parties_report_the_same_breakdown() {
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();
        let (mut cc, mut cs) = mem_pair();
        let epoch = Instant::now();
        let server = ServerSession::new(Arc::clone(&compiled), &cfg);
        let e_bits = vec![vec![false; 16]; 2];
        let handle = std::thread::spawn(move || server.run(&mut cs, &e_bits, epoch));
        let client = ClientSession::new(Arc::clone(&compiled), &cfg);
        let g_bits = vec![vec![false; 17]; 2];
        let cout = client.run(&mut cc, &g_bits, epoch).unwrap();
        let sout = handle.join().unwrap().unwrap();
        // Same wire, observed from either end.
        assert_eq!(cout.wire, sout.wire);
        assert_eq!(cout.sent, sout.received);
        assert_eq!(cout.received, sout.sent);
        assert_eq!(cout.wire.total(), cout.sent + cout.received);
        assert!(cout.wire.tables > 0);
        assert!(cout.wire.base_ot > 0);
        assert!(cout.wire.ot_ext > 0);
        assert!(cout.wire.output_bits > 0);
        assert!(cout.wire.input_labels > 0);
    }

    #[test]
    fn session_deltas_exclude_pre_protocol_traffic() {
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();
        let (mut cc, mut cs) = mem_pair();
        let epoch = Instant::now();
        // A handshake before the sessions start must not be attributed to
        // the protocol.
        let server = ServerSession::new(Arc::clone(&compiled), &cfg);
        let handle = std::thread::spawn(move || {
            let hello = cs.recv(5).unwrap();
            assert_eq!(hello, b"hello");
            cs.send(b"again").unwrap();
            let e_bits = vec![vec![false; 16]];
            server.run(&mut cs, &e_bits, epoch).unwrap()
        });
        cc.send(b"hello").unwrap();
        assert_eq!(cc.recv(5).unwrap(), b"again");
        let client = ClientSession::new(Arc::clone(&compiled), &cfg);
        let cout = client.run(&mut cc, &[vec![false; 17]], epoch).unwrap();
        let sout = handle.join().unwrap();
        assert_eq!(cout.sent, cc.bytes_sent() - 5);
        assert_eq!(cout.wire, sout.wire);
    }

    #[test]
    fn split_setup_and_online_reuse_one_connection_for_many_requests() {
        // Two requests over one setup: the serving layer's shape. Each
        // request streams fresh offline-garbled material; the base OT
        // happens exactly once and appears in no request's breakdown.
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();
        let (mut cc, mut cs) = mem_pair();
        let epoch = Instant::now();
        const REQUESTS: usize = 2;

        let server = ServerSession::new(Arc::clone(&compiled), &cfg);
        let handle = std::thread::spawn(move || {
            let mut setup = server.setup(&mut cs).unwrap();
            let base = setup.base_ot_bytes();
            let outs: Vec<ServerOutcome> = (0..REQUESTS)
                .map(|_| {
                    let e_bits = vec![vec![false; 16]];
                    server
                        .run_online(&mut cs, &mut setup, &e_bits, epoch)
                        .unwrap()
                })
                .collect();
            (base, outs)
        });

        let client = ClientSession::new(Arc::clone(&compiled), &cfg);
        let mut setup = client.setup(&mut cc, epoch).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let couts: Vec<ClientOutcome> = (0..REQUESTS)
            .map(|_| {
                let material = GarbledMaterial::garble(&compiled, 1, &mut rng);
                assert_eq!(material.num_cycles(), 1);
                let g_bits = vec![vec![false; 17]];
                client
                    .run_online(&mut cc, &mut setup, material, &g_bits, epoch)
                    .unwrap()
            })
            .collect();
        let (server_base, souts) = handle.join().unwrap();

        assert_eq!(setup.base_ot_bytes(), server_base);
        assert!(server_base > 0, "setup must carry the base-OT traffic");
        for (cout, sout) in couts.iter().zip(&souts) {
            assert_eq!(cout.wire, sout.wire);
            assert_eq!(cout.wire.base_ot, 0, "base OT paid once, not per request");
            assert!(cout.wire.tables > 0);
            assert!(cout.wire.ot_ext > 0);
            // Zero-width garble spans: material came from offline garbling.
            for (garble, _) in &cout.cycles {
                assert_eq!(garble.duration_s(), 0.0);
            }
        }
        // Both requests moved identical byte counts (same circuit shape).
        assert_eq!(couts[0].wire, couts[1].wire);
    }

    #[test]
    fn online_run_matches_full_run_byte_for_byte() {
        // The split path must be wire-compatible with run(): same label,
        // same per-phase bytes (base OT accounted in the setup instead).
        let compiled = mac_compiled();
        let cfg = InferenceConfig::default();

        let full = {
            let (mut cc, mut cs) = mem_pair();
            let epoch = Instant::now();
            let server = ServerSession::new(Arc::clone(&compiled), &cfg);
            let e_bits = vec![vec![true; 16]];
            let handle = std::thread::spawn(move || server.run(&mut cs, &e_bits, epoch).unwrap());
            let client = ClientSession::new(Arc::clone(&compiled), &cfg);
            let cout = client.run(&mut cc, &[vec![true; 17]], epoch).unwrap();
            handle.join().unwrap();
            cout
        };

        let split = {
            let (mut cc, mut cs) = mem_pair();
            let epoch = Instant::now();
            let server = ServerSession::new(Arc::clone(&compiled), &cfg);
            let handle = std::thread::spawn(move || {
                let mut setup = server.setup(&mut cs).unwrap();
                let e_bits = vec![vec![true; 16]];
                let out = server
                    .run_online(&mut cs, &mut setup, &e_bits, epoch)
                    .unwrap();
                (setup.base_ot_bytes(), out)
            });
            let client = ClientSession::new(Arc::clone(&compiled), &cfg);
            let mut setup = client.setup(&mut cc, epoch).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let material = GarbledMaterial::garble(&compiled, 1, &mut rng);
            let cout = client
                .run_online(&mut cc, &mut setup, material, &[vec![true; 17]], epoch)
                .unwrap();
            let (server_base, _sout) = handle.join().unwrap();
            (setup.base_ot_bytes(), server_base, cout)
        };

        let (client_base, server_base, cout) = split;
        assert_eq!(cout.label, full.label, "labels must agree across paths");
        assert_eq!(client_base, full.wire.base_ot);
        assert_eq!(server_base, full.wire.base_ot);
        assert_eq!(cout.wire.ot_ext, full.wire.ot_ext);
        assert_eq!(cout.wire.tables, full.wire.tables);
        assert_eq!(cout.wire.input_labels, full.wire.input_labels);
        assert_eq!(cout.wire.output_bits, full.wire.output_bits);
    }
}
