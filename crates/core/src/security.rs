//! Executable checks of the paper's security propositions (§3.7).
//!
//! These are *property tests*, not proofs: Proposition 3.1 (the public
//! projection matrix reveals only the dictionary's column space) and
//! Proposition 3.2 (XOR-sharing is secure against non-colluding HbC
//! servers) are exercised on concrete instances, and the GC/OT layers are
//! tested in their own crates.

use deepsecure_linalg::{svd, Matrix};
use rand::Rng;

/// XOR secret sharing (Prop 3.2): splits `bits` into `(pad, masked)` where
/// `pad` is uniform and `masked = bits ⊕ pad`.
pub fn xor_share<R: Rng + ?Sized>(bits: &[bool], rng: &mut R) -> (Vec<bool>, Vec<bool>) {
    let pad: Vec<bool> = (0..bits.len()).map(|_| rng.gen()).collect();
    let masked = bits.iter().zip(&pad).map(|(&b, &p)| b ^ p).collect();
    (pad, masked)
}

/// Recombines XOR shares.
pub fn xor_reconstruct(pad: &[bool], masked: &[bool]) -> Vec<bool> {
    pad.iter().zip(masked).map(|(&p, &m)| p ^ m).collect()
}

/// Proposition 3.1 witness: `W = D(DᵀD)⁻¹Dᵀ` computed through the SVD
/// (`UUᵀ` over the left singular vectors) and through QR agree — `W` is a
/// function of the column space alone.
pub fn projector_via_svd(d: &Matrix) -> Matrix {
    let (u, _, _) = svd(d);
    u.matmul(&u.transpose())
}

/// Checks whether two dictionaries span the same subspace by comparing
/// their projectors (Frobenius distance below `tol`).
pub fn same_subspace(d1: &Matrix, d2: &Matrix, tol: f64) -> bool {
    d1.projector().sub(&d2.projector()).frobenius_norm() < tol
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let rng = std::cell::RefCell::new(StdRng::seed_from_u64(seed));
        Matrix::from_fn(rows, cols, |_, _| rng.borrow_mut().gen_range(-1.0..1.0))
    }

    #[test]
    fn proposition_3_1_w_depends_only_on_subspace() {
        let d = random_matrix(12, 4, 1);
        // Mix the columns with an invertible matrix: same span, very
        // different dictionary values.
        let mix = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0, 0.0],
            vec![0.0, 1.0, 3.0, 0.0],
            vec![1.0, 0.0, 1.0, 1.0],
            vec![0.0, 0.0, 0.0, 5.0],
        ]);
        let d_mixed = d.matmul(&mix);
        assert!(same_subspace(&d, &d_mixed, 1e-8));
        // Therefore infinitely many dictionaries share one W: W cannot
        // determine D.
        assert!(
            d.sub(&d_mixed).frobenius_norm() > 1.0,
            "dictionaries differ"
        );
    }

    #[test]
    fn proposition_3_1_svd_derivation() {
        // The paper's algebra: W = DD⁺ = UUᵀ via the SVD.
        let d = random_matrix(10, 3, 2);
        let via_svd = projector_via_svd(&d);
        let via_qr = d.projector();
        assert!(via_svd.sub(&via_qr).frobenius_norm() < 1e-8);
    }

    #[test]
    fn different_subspaces_have_different_w() {
        let d1 = random_matrix(10, 3, 3);
        let d2 = random_matrix(10, 3, 4);
        assert!(!same_subspace(&d1, &d2, 1e-3));
    }

    #[test]
    fn proposition_3_2_shares_reconstruct() {
        let mut rng = StdRng::seed_from_u64(5);
        let bits: Vec<bool> = (0..256).map(|_| rng.gen()).collect();
        let (pad, masked) = xor_share(&bits, &mut rng);
        assert_eq!(xor_reconstruct(&pad, &masked), bits);
    }

    #[test]
    fn proposition_3_2_each_share_is_balanced() {
        // With a fixed (worst-case, all-zero) input, both shares must
        // still look uniform: the pad is fresh randomness and the masked
        // share is a one-time-pad ciphertext.
        let mut rng = StdRng::seed_from_u64(6);
        let bits = vec![false; 4096];
        let (pad, masked) = xor_share(&bits, &mut rng);
        for (name, share) in [("pad", &pad), ("masked", &masked)] {
            let ones = share.iter().filter(|&&b| b).count();
            assert!(
                (1800..2300).contains(&ones),
                "{name} ones = {ones} out of 4096"
            );
        }
        // And the two shares are perfectly correlated only through x.
        assert_eq!(pad, masked, "x = 0 ⇒ masked == pad (OTP of zero)");
    }

    #[test]
    fn proposition_3_2_masked_share_independent_of_input() {
        // Same pad stream, two different inputs: masked shares differ, but
        // each is marginally uniform; here we check the sharing is a
        // bijection for fixed pad (no information loss / leak asymmetry).
        let mut rng = StdRng::seed_from_u64(7);
        let x1: Vec<bool> = (0..128).map(|_| rng.gen()).collect();
        let pad: Vec<bool> = (0..128).map(|_| rng.gen()).collect();
        let m1: Vec<bool> = x1.iter().zip(&pad).map(|(&a, &p)| a ^ p).collect();
        let back = xor_reconstruct(&pad, &m1);
        assert_eq!(back, x1);
    }
}
