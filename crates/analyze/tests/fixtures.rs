//! The checked-in corrupt-netlist fixtures fail with their documented
//! codes — the same files the CI `lint-analyze` job feeds to
//! `circuit_lint --netlist`.

use deepsecure_analyze::{analyze, DiagCode};
use deepsecure_circuit::netlist;

#[test]
fn use_before_def_fixture_fails_with_ds_e04() {
    let text = include_str!("../fixtures/use_before_def.netlist");
    // The strict parser refuses it outright...
    let strict = netlist::parse(text).expect_err("fixture must not validate");
    assert!(strict.to_string().contains("DS-E04"), "{strict}");
    // ...while the raw parse + analyzer pins the exact code and location.
    let circuit = netlist::parse_raw(text).expect("shape parses");
    let a = analyze(&circuit);
    assert!(a.cost.is_none(), "structural errors suppress cost");
    assert_eq!(a.error_count(), 1);
    assert_eq!(a.diagnostics[0].code, DiagCode::UseBeforeDef);
}
