//! The analyzer's cost predictions cross-checked against the *measured*
//! protocol: the static numbers must match what the garbler and the live
//! two-party run actually produce, bit for bit. This is what keeps
//! `deepsecure-analyze` from drifting away from the runtime it models.

use std::sync::Arc;

use deepsecure_analyze::cost::{cost, TABLE_BYTES_PER_NONFREE_GATE};
use deepsecure_circuit::{Builder, Circuit};
use deepsecure_core::protocol::{run_circuit, run_compiled, InferenceConfig};
use deepsecure_core::session::GarbledMaterial;
use deepsecure_serve::demo;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A combinational circuit with `nonfree` AND gates in a chain — wide
/// enough that a 1024-gate chunk is a real streaming window, small enough
/// for a debug-mode protocol run.
fn chain_circuit(nonfree: usize) -> Circuit {
    let mut b = Builder::new();
    let xs = b.garbler_inputs(8);
    let ys = b.evaluator_inputs(8);
    let mut acc = b.xor(xs[0], ys[0]);
    for i in 0..nonfree {
        // Every AND has a distinct `acc` operand, so the builder's CSE
        // keeps all of them and the non-free count is exactly `nonfree`.
        let t = b.and(acc, xs[i % 8]);
        acc = b.xor(t, ys[i % 8]);
    }
    b.output(acc);
    b.finish()
}

#[test]
fn prediction_matches_live_protocol_at_chunk_0_and_1024() {
    let c = chain_circuit(2500);
    let report = cost(&c);
    assert_eq!(report.non_free_gates, 2500);
    assert_eq!(report.table_bytes, 2500 * TABLE_BYTES_PER_NONFREE_GATE);

    let g_bits = vec![true; 8];
    let e_bits = vec![false; 8];
    for chunk_gates in [0usize, 1024] {
        let cfg = InferenceConfig {
            chunk_gates,
            ..InferenceConfig::default()
        };
        let (_, run) = run_circuit(&c, &g_bits, &e_bits, &cfg).expect("protocol run");
        // Wire tables and the high-water mark of resident table bytes must
        // equal the static prediction exactly — buffered holds the whole
        // stream, streamed holds one 1024-gate chunk.
        assert_eq!(
            run.material_bytes, report.table_bytes,
            "chunk {chunk_gates}"
        );
        assert_eq!(run.wire.tables, report.table_bytes, "chunk {chunk_gates}");
        assert_eq!(
            run.peak_material_bytes,
            report.peak_resident_table_bytes(chunk_gates),
            "chunk {chunk_gates}"
        );
    }
    assert_eq!(report.peak_resident_table_bytes(0), 2500 * 32);
    assert_eq!(report.peak_resident_table_bytes(1024), 1024 * 32);
}

#[test]
fn prediction_matches_garbler_on_small_zoo_models() {
    for name in ["tiny_mlp", "tiny_cnn"] {
        let model = demo::load(name).expect("demo model");
        let c = &model.compiled.circuit;
        let report = cost(c);

        // The garbler's own static count agrees...
        assert_eq!(
            report.non_free_gates,
            c.nonfree_gate_count() as u64,
            "{name}"
        );
        assert_eq!(report.non_free_gates, c.stats().non_xor, "{name}");

        // ...and so does the material it actually produces: 2 ciphertexts
        // of 16 bytes per non-free gate, for every cycle garbled.
        let mut rng = StdRng::seed_from_u64(7);
        let cycles = 2usize;
        let material = GarbledMaterial::garble(&model.compiled, cycles, &mut rng);
        assert_eq!(
            material.table_bytes(),
            report.table_bytes * cycles as u64,
            "{name}"
        );
        assert_eq!(
            material.table_bytes(),
            report.precomputed_client_resident_bytes(cycles as u64),
            "{name}"
        );
    }
}

/// Full live two-party run over the MNIST-scale model at both chunk
/// settings — minutes of work, so ignored by default; CI runs it release
/// with `-- --ignored`.
#[test]
#[ignore = "trains and runs mnist_mlp; release-mode CI job covers it"]
fn prediction_matches_live_protocol_on_mnist_mlp() {
    let model = demo::load("mnist_mlp").expect("demo model");
    let report = cost(&model.compiled.circuit);
    let g_bits = model.compiled.input_bits(&model.dataset.inputs[0]);
    let e_bits = model.compiled.weight_bits(&model.net);
    for chunk_gates in [0usize, 1024] {
        let cfg = InferenceConfig {
            chunk_gates,
            ..demo::inference_config()
        };
        let run = run_compiled(
            Arc::clone(&model.compiled),
            vec![g_bits.clone()],
            vec![e_bits.clone()],
            &cfg,
        )
        .expect("protocol run");
        assert_eq!(
            run.material_bytes, report.table_bytes,
            "chunk {chunk_gates}"
        );
        assert_eq!(
            run.peak_material_bytes,
            report.peak_resident_table_bytes(chunk_gates),
            "chunk {chunk_gates}"
        );
    }
}
