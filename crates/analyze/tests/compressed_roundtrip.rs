//! Netlist round-trip for *compressed* circuits: a pruned network
//! compiled at the compressed operating point and run through circuit
//! pre-processing must survive `netlist::serialize` → `parse_raw` exactly,
//! and the re-imported circuit must analyze clean (no DS-E*, no DS-W*) —
//! the same path `circuit_lint --netlist` walks in CI.

use deepsecure_analyze::analyze;
use deepsecure_circuit::netlist;
use deepsecure_core::compile::{compile, CompileOptions};
use deepsecure_core::preprocess::preprocess_compiled;
use deepsecure_nn::{prune, zoo};

#[test]
fn compressed_circuit_roundtrips_and_lints_clean() {
    // No training needed: the seeded random init is deterministic and the
    // sparsity map is all magnitude pruning cares about here.
    let mut net = zoo::tiny_mlp(4);
    prune::magnitude_prune(&mut net, 0.9);
    assert!(prune::sparsity(&net) >= 0.85);
    let (compiled, _) = preprocess_compiled(compile(&net, &CompileOptions::compressed()));
    let circuit = &compiled.circuit;

    // The sparsity-aware matvec must have dropped the pruned multiplies:
    // well under half the dense tiny_mlp's 600_259 non-free gates.
    let stats = circuit.stats();
    assert!(
        stats.non_xor < 300_000,
        "compressed tiny_mlp still has {} non-free gates",
        stats.non_xor
    );

    let text = netlist::serialize(circuit);
    let parsed = netlist::parse_raw(&text).expect("serialized compressed circuit parses");
    assert_eq!(parsed.wire_count(), circuit.wire_count());
    assert_eq!(parsed.garbler_inputs(), circuit.garbler_inputs());
    assert_eq!(parsed.evaluator_inputs(), circuit.evaluator_inputs());
    assert_eq!(parsed.outputs(), circuit.outputs());
    assert_eq!(parsed.gates(), circuit.gates());
    assert_eq!(parsed.stats(), stats);
    // Byte-exact re-serialization — the round trip is lossless.
    assert_eq!(netlist::serialize(&parsed), text);

    // The `circuit_lint --netlist` path: re-imported compressed circuits
    // must be clean even with warnings denied (zero DS-W01 dead gates /
    // DS-W03 duplicates survive pre-processing).
    let analysis = analyze(&parsed);
    assert!(
        analysis.is_clean(),
        "diagnostics: {:?}",
        analysis.diagnostics
    );
    assert_eq!(analysis.error_count(), 0);
    assert_eq!(analysis.warning_count(), 0);
    let cost = analysis.cost.expect("clean circuit has a cost report");
    assert_eq!(cost.non_free_gates, stats.non_xor);
    assert_eq!(cost.table_bytes, 32 * stats.non_xor);
}
