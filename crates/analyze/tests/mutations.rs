//! Property tests for the verifier: every circuit the [`Builder`] emits
//! analyzes clean, and targeted mutations of a clean circuit (injected via
//! [`Circuit::from_raw_parts`], bypassing validation) produce exactly the
//! documented diagnostic codes.

use deepsecure_analyze::{analyze, DiagCode, Severity};
use deepsecure_circuit::{Builder, Circuit, Gate, GateKind, Wire};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A random mixed-gate circuit (same shape family as the garble crate's
/// simulator-equivalence tests): constants, unary and binary gates, a few
/// outputs — everything the analyzer must accept without a murmur.
fn random_circuit(seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new();
    let ng = rng.gen_range(1..4);
    let ne = rng.gen_range(1..4);
    let mut pool: Vec<Wire> = b.garbler_inputs(ng);
    pool.extend(b.evaluator_inputs(ne));
    if rng.gen() {
        pool.push(b.const1());
    }
    for _ in 0..rng.gen_range(8..60) {
        let a = pool[rng.gen_range(0..pool.len())];
        let c = pool[rng.gen_range(0..pool.len())];
        let w = match rng.gen_range(0..8) {
            0 => b.xor(a, c),
            1 => b.and(a, c),
            2 => b.or(a, c),
            3 => b.xnor(a, c),
            4 => b.nand(a, c),
            5 => b.nor(a, c),
            6 => b.mux(a, c, pool[rng.gen_range(0..pool.len())]),
            _ => b.not(a),
        };
        pool.push(w);
    }
    // Output up to three *distinct, non-constant* wires — what a compiler
    // front-end actually emits. Outputting the same wire twice or a wire
    // the builder folded to a constant is legal but rightly flagged
    // (DS-W04/DS-W05), so the clean-circuit property excludes it; inputs
    // are always in the pool, so at least one candidate exists.
    let mut outs: Vec<Wire> = Vec::new();
    for _ in 0..16 {
        let w = pool[rng.gen_range(0..pool.len())];
        if w.index() >= 2 && !outs.contains(&w) {
            outs.push(w);
            if outs.len() == 3 {
                break;
            }
        }
    }
    for w in outs {
        b.output(w);
    }
    b.finish()
}

/// Rebuilds `c` through `from_raw_parts` with the gate list replaced.
fn with_gates(c: &Circuit, gates: Vec<Gate>) -> Circuit {
    Circuit::from_raw_parts(
        c.wire_count() as u32,
        c.garbler_inputs().to_vec(),
        c.evaluator_inputs().to_vec(),
        c.outputs().to_vec(),
        gates,
        c.registers().to_vec(),
    )
}

/// First error-severity code reported for `c`, if any.
fn first_error(c: &Circuit) -> Option<DiagCode> {
    analyze(c)
        .diagnostics
        .iter()
        .find(|d| d.severity() == Severity::Error)
        .map(|d| d.code)
}

/// Index of some gate whose input is another gate's output (so moving it
/// before its producer breaks topological order).
fn gate_fed_by_gate(c: &Circuit) -> Option<(usize, usize)> {
    c.gates().iter().enumerate().find_map(|(i, g)| {
        c.gates()[..i]
            .iter()
            .position(|p| p.out == g.a || p.out == g.b)
            .map(|p| (p, i))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Builder output is the analyzer's ground truth: no circuit the
    // builder finishes may trip a single error *or* warning, and its
    // validate() must agree.
    #[test]
    fn builder_circuits_analyze_clean(seed in any::<u64>()) {
        let c = random_circuit(seed);
        prop_assert_eq!(c.validate(), Ok(()));
        let a = analyze(&c);
        prop_assert!(a.is_clean(), "diagnostics: {:?}", a.diagnostics);
        let cost = a.cost.unwrap();
        prop_assert_eq!(cost.non_free_gates, c.stats().non_xor);
        prop_assert_eq!(cost.table_bytes, 32 * c.stats().non_xor);
    }

    // Moving a consumer gate in front of its producer breaks topological
    // order: DS-E04 (use before def), and validate() agrees on the code.
    #[test]
    fn shuffled_gate_order_is_use_before_def(seed in any::<u64>()) {
        let c = random_circuit(seed);
        prop_assume!(gate_fed_by_gate(&c).is_some());
        let (producer, consumer) = gate_fed_by_gate(&c).unwrap();
        let mut gates = c.gates().to_vec();
        gates.swap(producer, consumer);
        let bad = with_gates(&c, gates);
        prop_assert_eq!(first_error(&bad), Some(DiagCode::UseBeforeDef));
        prop_assert_eq!(bad.validate().unwrap_err().code, DiagCode::UseBeforeDef);
    }

    // Pointing a gate input past the wire table is DS-E03.
    #[test]
    fn dangling_input_wire_is_out_of_bounds(seed in any::<u64>()) {
        let c = random_circuit(seed);
        prop_assume!(!c.gates().is_empty());
        let mut gates = c.gates().to_vec();
        let i = (seed as usize) % gates.len();
        gates[i].a = Wire(c.wire_count() as u32 + 7);
        let bad = with_gates(&c, gates);
        prop_assert_eq!(first_error(&bad), Some(DiagCode::InputOutOfBounds));
        prop_assert_eq!(bad.validate().unwrap_err().code, DiagCode::InputOutOfBounds);
    }

    // A unary gate whose `b` differs from `a` violates the `b == a`
    // encoding convention: DS-E08.
    #[test]
    fn unary_gate_with_two_inputs_is_an_arity_error(seed in any::<u64>()) {
        let c = random_circuit(seed);
        let not = c
            .gates()
            .iter()
            .position(|g| !g.kind.is_binary());
        prop_assume!(not.is_some());
        let mut gates = c.gates().to_vec();
        let i = not.unwrap();
        // CONST_1 always exists and differs from any valid `a` choice the
        // builder makes for a NOT (it folds constant inputs away).
        gates[i].b = deepsecure_circuit::CONST_1;
        prop_assume!(gates[i].b != gates[i].a);
        let bad = with_gates(&c, gates);
        prop_assert_eq!(first_error(&bad), Some(DiagCode::UnaryArity));
        prop_assert_eq!(bad.validate().unwrap_err().code, DiagCode::UnaryArity);
    }

    // Re-computing an existing non-free gate onto a fresh wire is the CSE
    // opportunity DS-W03 — a warning, not an error, and the analyzer must
    // price the duplicate at one non-free gate (32 table bytes).
    #[test]
    fn duplicated_nonfree_gate_is_a_cse_warning(seed in any::<u64>()) {
        let c = random_circuit(seed);
        let dup = c.gates().iter().find(|g| !g.kind.is_free()).copied();
        prop_assume!(dup.is_some());
        let dup = dup.unwrap();
        let fresh = Wire(c.wire_count() as u32);
        let mut gates = c.gates().to_vec();
        gates.push(Gate { out: fresh, ..dup });
        let mut outputs = c.outputs().to_vec();
        outputs.push(fresh); // keep the copy live so W01 stays out of the way
        let bad = Circuit::from_raw_parts(
            c.wire_count() as u32 + 1,
            c.garbler_inputs().to_vec(),
            c.evaluator_inputs().to_vec(),
            outputs,
            gates,
            c.registers().to_vec(),
        );
        let a = analyze(&bad);
        prop_assert_eq!(a.error_count(), 0);
        prop_assert!(
            a.diagnostics.iter().any(|d| d.code == DiagCode::DuplicateGate),
            "diagnostics: {:?}",
            a.diagnostics
        );
        let opp = a.opportunities.unwrap();
        prop_assert_eq!(opp.duplicate.non_free_gates, 1);
        prop_assert_eq!(opp.duplicate.table_bytes, 32);
    }
}

#[test]
fn swapped_commutative_inputs_still_count_as_duplicates() {
    // The dup key normalizes commutative inputs, mirroring the builder's
    // CSE: AND(x, y) duplicated as AND(y, x) must still be DS-W03.
    let mut b = Builder::new();
    let x = b.garbler_input();
    let y = b.evaluator_input();
    let z = b.and(x, y);
    b.output(z);
    let c = b.finish();
    let and = *c
        .gates()
        .iter()
        .find(|g| g.kind == GateKind::And)
        .expect("the AND survives");
    let fresh = Wire(c.wire_count() as u32);
    let mut gates = c.gates().to_vec();
    gates.push(Gate {
        kind: GateKind::And,
        a: and.b,
        b: and.a,
        out: fresh,
    });
    let mut outputs = c.outputs().to_vec();
    outputs.push(fresh);
    let bad = Circuit::from_raw_parts(
        c.wire_count() as u32 + 1,
        c.garbler_inputs().to_vec(),
        c.evaluator_inputs().to_vec(),
        outputs,
        gates,
        c.registers().to_vec(),
    );
    let a = analyze(&bad);
    assert!(
        a.diagnostics
            .iter()
            .any(|d| d.code == DiagCode::DuplicateGate),
        "diagnostics: {:?}",
        a.diagnostics
    );
}
