//! Token-level protocol-path lint: deny `unwrap()`/`expect()`/`panic!` in
//! protocol and channel code.
//!
//! A panic inside the two-party protocol tears down a session mid-handshake
//! and, server-side, can take a pooled worker with it — every fallible step
//! on those paths is supposed to surface a `ChannelError`/`ProtocolError`
//! instead. This lint scans the protocol crates' sources (skipping
//! comments, string literals and `#[cfg(test)]` modules) for the denied
//! tokens; the audited exceptions — provably-infallible invariants like
//! poison-free lock recovery or compiler-internal layout checks — live in a
//! checked-in allowlist that CI keeps honest in both directions (a finding
//! without an entry fails, and so does a stale entry matching nothing).
//!
//! The pass is deliberately token-level rather than a full parser: it needs
//! zero dependencies, runs in milliseconds, and the failure mode of a
//! missed corner (an exotic literal form) is a false *positive* that the
//! allowlist can document — never a silently-skipped protocol panic.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Tokens denied on protocol paths.
pub const DENIED_TOKENS: &[&str] = &[".unwrap(", ".expect(", "panic!"];

/// Directories scanned by default, relative to the repository root: the
/// crates whose code runs inside a live two-party session — including the
/// vendored telemetry core, whose span guards and counters sit on every
/// instrumented protocol path.
pub const DEFAULT_LINT_DIRS: &[&str] = &[
    "crates/ot/src",
    "crates/core/src",
    "crates/serve/src",
    "vendor/telemetry/src",
];

/// One denied-token occurrence outside comments, strings and test modules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SrcFinding {
    /// File the token was found in (as given, root-relative when scanning a
    /// tree).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The denied token matched.
    pub token: &'static str,
    /// The full source line, trimmed.
    pub text: String,
}

impl fmt::Display for SrcFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: denied token `{}` in: {}",
            self.file.display(),
            self.line,
            self.token,
            self.text
        )
    }
}

/// One audited exception: `file | token | contains | reason`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Path suffix the finding's file must end with.
    pub file: String,
    /// Substring of the denied token (`unwrap`, `expect`, `panic`).
    pub token: String,
    /// Substring the source line must contain (robust to line-number
    /// drift).
    pub contains: String,
    /// Why the occurrence is provably safe.
    pub reason: String,
}

impl AllowEntry {
    fn permits(&self, finding: &SrcFinding) -> bool {
        finding.file.to_string_lossy().ends_with(&self.file)
            && finding.token.contains(self.token.as_str())
            && finding.text.contains(self.contains.as_str())
    }
}

/// A parsed allowlist file.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An allowlist permitting nothing.
    pub fn empty() -> Allowlist {
        Allowlist::default()
    }

    /// Parses the `file | token | contains | reason` line format. Blank
    /// lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(format!(
                    "allowlist line {}: expected `file | token | contains | reason`, got {line:?}",
                    idx + 1
                ));
            }
            if !DENIED_TOKENS.iter().any(|t| t.contains(fields[1])) || fields[1].is_empty() {
                return Err(format!(
                    "allowlist line {}: token {:?} is not one of the denied tokens",
                    idx + 1,
                    fields[1]
                ));
            }
            entries.push(AllowEntry {
                file: fields[0].to_string(),
                token: fields[1].to_string(),
                contains: fields[2].to_string(),
                reason: fields[3].to_string(),
            });
        }
        Ok(Allowlist { entries })
    }
}

/// Outcome of a lint run.
#[derive(Clone, Debug, Default)]
pub struct SrcLintReport {
    /// Denied-token occurrences not covered by the allowlist.
    pub findings: Vec<SrcFinding>,
    /// Occurrences covered by an allowlist entry.
    pub allowed: Vec<SrcFinding>,
    /// Allowlist entries that matched nothing (stale — they must be
    /// removed so the list stays an audit trail, not a junk drawer).
    pub stale_entries: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl SrcLintReport {
    /// Whether the lint gate passes: no uncovered findings, no stale
    /// entries.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_entries.is_empty()
    }
}

/// Lints every `.rs` file under `root/<dir>` for each of `dirs`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_tree(root: &Path, dirs: &[&str], allow: &Allowlist) -> io::Result<SrcLintReport> {
    let mut files = Vec::new();
    for dir in dirs {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    files.sort();
    let mut report = SrcLintReport {
        files_scanned: files.len(),
        ..SrcLintReport::default()
    };
    let mut used = vec![false; allow.entries.len()];
    for file in files {
        let text = fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        for finding in scan_source(&rel, &text) {
            match allow.entries.iter().position(|e| e.permits(&finding)) {
                Some(i) => {
                    used[i] = true;
                    report.allowed.push(finding);
                }
                None => report.findings.push(finding),
            }
        }
    }
    for (i, entry) in allow.entries.iter().enumerate() {
        if !used[i] {
            report.stale_entries.push(entry.clone());
        }
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans one source text for denied tokens, reporting findings against
/// `file`. Comments, string/char literals and `#[cfg(test)]` blocks are
/// masked out first.
pub fn scan_source(file: &Path, text: &str) -> Vec<SrcFinding> {
    let mut masked = mask_literals_and_comments(text);
    mask_test_modules(&mut masked);
    let masked = String::from_utf8_lossy(&masked).into_owned();
    let mut findings = Vec::new();
    for ((lineno, masked_line), original_line) in masked.lines().enumerate().zip(text.lines()) {
        for token in DENIED_TOKENS {
            if masked_line.contains(token) {
                findings.push(SrcFinding {
                    file: file.to_path_buf(),
                    line: lineno + 1,
                    token,
                    text: original_line.trim().to_string(),
                });
            }
        }
    }
    findings
}

/// Replaces comments, string literals and char literals with spaces
/// (newlines preserved so line numbers survive).
fn mask_literals_and_comments(src: &str) -> Vec<u8> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = b.to_vec();
    let blank = |out: &mut [u8], i: usize| {
        if out[i] != b'\n' {
            out[i] = b' ';
        }
    };
    let mut i = 0;
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Rust block comments nest.
                let mut depth = 1usize;
                out[i] = b' ';
                out[i + 1] = b' ';
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                    } else {
                        blank(&mut out, i);
                        i += 1;
                    }
                }
            }
            b'"' => {
                // Raw string? Count '#'s immediately before, then look for
                // an `r` (optionally a `br` byte-string prefix).
                let mut j = i;
                let mut hashes = 0usize;
                while j > 0 && b[j - 1] == b'#' {
                    j -= 1;
                    hashes += 1;
                }
                let is_raw = j > 0 && b[j - 1] == b'r';
                out[i] = b' ';
                i += 1;
                if is_raw {
                    // Terminated by `"` + the same number of `#`s.
                    while i < n {
                        if b[i] == b'"'
                            && n - i > hashes
                            && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
                        {
                            blank(&mut out, i);
                            for k in 0..hashes {
                                blank(&mut out, i + 1 + k);
                            }
                            i += 1 + hashes;
                            break;
                        }
                        blank(&mut out, i);
                        i += 1;
                    }
                } else {
                    while i < n {
                        if b[i] == b'\\' && i + 1 < n {
                            blank(&mut out, i);
                            blank(&mut out, i + 1);
                            i += 2;
                        } else if b[i] == b'"' {
                            out[i] = b' ';
                            i += 1;
                            break;
                        } else {
                            blank(&mut out, i);
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                if i + 1 < n && b[i + 1] == b'\\' {
                    // Escaped char literal: '\n', '\x41', '\u{2026}'.
                    let mut j = i + 2;
                    while j < n && b[j] != b'\'' {
                        j += 1;
                    }
                    for k in i..=j.min(n - 1) {
                        blank(&mut out, k);
                    }
                    i = j + 1;
                } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    // Simple one-byte char literal, e.g. '"' or 'x'.
                    blank(&mut out, i);
                    blank(&mut out, i + 1);
                    blank(&mut out, i + 2);
                    i += 3;
                } else {
                    // Lifetime or loop label: leave as-is.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Blanks every `#[cfg(test)]`-gated item body (brace-matched on the
/// already-masked text, so braces inside strings cannot desynchronize it).
fn mask_test_modules(masked: &mut [u8]) {
    const ATTR: &[u8] = b"#[cfg(test)]";
    let mut from = 0;
    while let Some(pos) = find(masked, ATTR, from) {
        // Find the opening brace of the gated item, then its match.
        let Some(open) = masked[pos..].iter().position(|&c| c == b'{') else {
            break;
        };
        let open = pos + open;
        let mut depth = 0usize;
        let mut end = None;
        for (off, &c) in masked[open..].iter().enumerate() {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(open + off);
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = end.unwrap_or(masked.len() - 1);
        for c in &mut masked[pos..=end] {
            if *c != b'\n' {
                *c = b' ';
            }
        }
        from = end + 1;
    }
}

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<SrcFinding> {
        scan_source(Path::new("x.rs"), src)
    }

    #[test]
    fn finds_denied_tokens() {
        let src = "fn f() { let x = g().unwrap(); h().expect(\"no\"); panic!(\"boom\"); }\n";
        let found = scan(src);
        let tokens: Vec<_> = found.iter().map(|f| f.token).collect();
        assert_eq!(tokens, vec![".unwrap(", ".expect(", "panic!"]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r##"
// a.unwrap() in a line comment
/* b.unwrap() in a /* nested */ block comment */
fn f() {
    let s = "c.unwrap() in a string with \" escape";
    let r = r#"d.unwrap() in a raw string"#;
    let q = '"'; // char literal that would otherwise open a string
    let ok = s.len();
}
"##;
        assert_eq!(scan(src), vec![]);
    }

    #[test]
    fn skips_doc_comments_and_test_modules() {
        let src = "\
//! top.unwrap() doc\n\
fn live() -> usize { 1 }\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { x().unwrap(); panic!(\"fine in tests\"); }\n\
}\n\
fn after() { y().unwrap(); }\n";
        let found = scan(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 8);
        assert_eq!(found[0].token, ".unwrap(");
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f() { m.lock().unwrap_or_else(|p| p.into_inner()); }\n";
        assert_eq!(scan(src), vec![]);
    }

    #[test]
    fn allowlist_covers_and_goes_stale() {
        let allow = Allowlist::parse(
            "# comment\n\
             x.rs | expect | at least one cycle | entry assert guarantees non-empty\n\
             x.rs | panic | never happens | stale entry\n",
        )
        .unwrap();
        let src = "fn f() { v.last().expect(\"at least one cycle\"); }\n";
        let findings = scan(src);
        assert_eq!(findings.len(), 1);
        assert!(allow.entries[0].permits(&findings[0]));
        assert!(!allow.entries[1].permits(&findings[0]));
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("too | few | fields").is_err());
        assert!(Allowlist::parse("f.rs | frobnicate | x | reason").is_err());
    }

    #[test]
    fn lint_tree_reports_stale_entries() {
        let dir = std::env::temp_dir().join(format!(
            "deepsecure-srclint-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let src_dir = dir.join("src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(src_dir.join("a.rs"), "fn f() { g().unwrap(); }\n").unwrap();
        let allow = Allowlist::parse("a.rs | unwrap | g() | audited\nb.rs | panic | zzz | stale\n")
            .unwrap();
        let report = lint_tree(&dir, &["src"], &allow).unwrap();
        assert_eq!(report.files_scanned, 1);
        assert!(report.findings.is_empty());
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.stale_entries.len(), 1);
        assert!(!report.is_clean());
        let strict = lint_tree(&dir, &["src"], &Allowlist::empty()).unwrap();
        assert_eq!(strict.findings.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
