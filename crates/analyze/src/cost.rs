//! Static garbling-cost prediction.
//!
//! Everything the protocol pays for is a pure function of the circuit: each
//! non-free gate costs two 128-bit ciphertexts (32 bytes) under half-gates
//! with Free-XOR, the depth bounds per-cycle latency, the level widths bound
//! parallel speedup, and the streaming chunk size bounds peak resident
//! table memory. This module computes all of it without garbling a single
//! gate; the `cost_crosscheck` integration tests pin every number to the
//! garbler's measured counters so the predictions can never drift from
//! runtime.

use deepsecure_circuit::{passes, Circuit};

/// Bytes per non-free gate: two 128-bit half-gate ciphertexts.
pub const TABLE_BYTES_PER_NONFREE_GATE: u64 = 32;

/// Statically-predicted garbling cost of one circuit (one clock cycle for
/// sequential circuits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostReport {
    /// Total wires, including the two constants.
    pub wires: u64,
    /// Total gates.
    pub gates: u64,
    /// Free gates (XOR/XNOR/NOT/BUF) — zero communication under Free-XOR.
    pub free_gates: u64,
    /// Non-free gates (AND/NAND/OR/NOR).
    pub non_free_gates: u64,
    /// Garbled-table bytes per cycle: `32 × non_free_gates`. Equals the
    /// protocol's measured `WireBreakdown::tables` for a one-cycle run and
    /// the garbler's `GarbledCycle` table length in bytes.
    pub table_bytes: u64,
    /// Longest gate chain (levelized depth).
    pub depth: u32,
    /// Non-free gates on the critical path (multiplicative-depth analog).
    pub non_xor_depth: u32,
    /// Gates at each level; index `l` holds the width of level `l + 1`
    /// (primary wires sit at level 0 and are not counted).
    pub level_widths: Vec<u32>,
    /// Garbler (client) input bits.
    pub garbler_inputs: u64,
    /// Evaluator (server) input bits.
    pub evaluator_inputs: u64,
    /// Output bits.
    pub outputs: u64,
    /// Registers (0 for combinational circuits).
    pub registers: u64,
}

impl CostReport {
    /// Widest level (upper bound on useful garbling parallelism).
    pub fn max_level_width(&self) -> u32 {
        self.level_widths.iter().copied().max().unwrap_or(0)
    }

    /// Peak garbled-table bytes resident in memory at once, per cycle, for
    /// either live party at streaming chunk size `chunk_gates` (0 = fully
    /// buffered, matching the protocol's convention).
    ///
    /// This reproduces the `PeakBytes` accounting in
    /// `deepsecure-core::session` exactly: a buffered cycle holds the whole
    /// table stream (`32 × non_free`), a streamed cycle at most one chunk of
    /// `chunk_gates` non-free gates (`32 × min(chunk_gates, non_free)`).
    /// A client replaying *precomputed* material instead holds the whole
    /// material buffer; see
    /// [`CostReport::precomputed_client_resident_bytes`].
    pub fn peak_resident_table_bytes(&self, chunk_gates: usize) -> u64 {
        if chunk_gates == 0 {
            self.table_bytes
        } else {
            TABLE_BYTES_PER_NONFREE_GATE * (chunk_gates as u64).min(self.non_free_gates)
        }
    }

    /// Table bytes a client holds when replaying precomputed material for
    /// `cycles` clock cycles: the whole material buffer, independent of the
    /// streaming chunk size.
    pub fn precomputed_client_resident_bytes(&self, cycles: u64) -> u64 {
        self.table_bytes * cycles
    }

    /// Level-width histogram in power-of-two buckets: `(bucket_max, levels)`
    /// pairs, where a level of width `w` lands in the smallest bucket with
    /// `w <= bucket_max`. Compact enough to print for million-gate circuits
    /// whose raw `level_widths` run to tens of thousands of entries.
    pub fn width_histogram(&self) -> Vec<(u32, u32)> {
        let mut buckets: Vec<(u32, u32)> = Vec::new();
        for &w in &self.level_widths {
            let cap = w.max(1).next_power_of_two();
            match buckets.binary_search_by_key(&cap, |b| b.0) {
                Ok(i) => buckets[i].1 += 1,
                Err(i) => buckets.insert(i, (cap, 1)),
            }
        }
        buckets
    }
}

/// Predicts the garbling cost of a structurally-valid circuit.
///
/// Call on validated circuits only (e.g. after
/// [`crate::verify`] reports no errors); out-of-bounds wires would panic.
pub fn cost(circuit: &Circuit) -> CostReport {
    let stats = circuit.stats();
    let levels = passes::levelize(circuit);
    let mut level_widths = vec![0u32; levels.max_level() as usize];
    for i in 0..levels.gate_count() {
        level_widths[(levels.gate_level(i) - 1) as usize] += 1;
    }
    let non_free_gates = u64::from(levels.nonfree_before(levels.gate_count()));
    debug_assert_eq!(non_free_gates, stats.non_xor);
    CostReport {
        wires: circuit.wire_count() as u64,
        gates: stats.total(),
        free_gates: stats.xor,
        non_free_gates,
        table_bytes: TABLE_BYTES_PER_NONFREE_GATE * non_free_gates,
        depth: levels.max_level(),
        non_xor_depth: passes::non_xor_depth(circuit) as u32,
        level_widths,
        garbler_inputs: circuit.garbler_inputs().len() as u64,
        evaluator_inputs: circuit.evaluator_inputs().len() as u64,
        outputs: circuit.outputs().len() as u64,
        registers: circuit.registers().len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsecure_circuit::Builder;

    fn sample() -> Circuit {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let t1 = b.and(x, y); // level 1, non-free
        let t2 = b.xor(t1, x); // level 2, free
        let t3 = b.and(t2, y); // level 3, non-free
        b.output(t3);
        b.finish()
    }

    #[test]
    fn counts_and_depths() {
        let c = sample();
        let r = cost(&c);
        assert_eq!(r.gates, 3);
        assert_eq!(r.free_gates, 1);
        assert_eq!(r.non_free_gates, 2);
        assert_eq!(r.table_bytes, 64);
        assert_eq!(r.depth, 3);
        assert_eq!(r.non_xor_depth, 2);
        assert_eq!(r.level_widths, vec![1, 1, 1]);
        assert_eq!(r.max_level_width(), 1);
        assert_eq!(r.garbler_inputs, 1);
        assert_eq!(r.evaluator_inputs, 1);
        assert_eq!(r.outputs, 1);
    }

    #[test]
    fn peak_prediction_matches_streaming_rules() {
        let c = sample();
        let r = cost(&c);
        // Buffered: whole table stream.
        assert_eq!(r.peak_resident_table_bytes(0), 64);
        // Chunk smaller than the stream: one chunk resident.
        assert_eq!(r.peak_resident_table_bytes(1), 32);
        // Chunk at least the stream: the stream itself.
        assert_eq!(r.peak_resident_table_bytes(2), 64);
        assert_eq!(r.peak_resident_table_bytes(1024), 64);
        assert_eq!(r.precomputed_client_resident_bytes(3), 192);
    }

    #[test]
    fn zero_nonfree_circuit_costs_nothing() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let t = b.xor(x, y);
        b.output(t);
        let c = b.finish();
        let r = cost(&c);
        assert_eq!(r.non_free_gates, 0);
        assert_eq!(r.table_bytes, 0);
        assert_eq!(r.peak_resident_table_bytes(0), 0);
        assert_eq!(r.peak_resident_table_bytes(1024), 0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut b = Builder::new();
        let xs = b.garbler_inputs(6);
        let ys = b.evaluator_inputs(6);
        // Level 1: six independent ANDs. Level 2+: a reduction tree.
        let mut acc: Vec<_> = xs.iter().zip(&ys).map(|(x, y)| b.and(*x, *y)).collect();
        while acc.len() > 1 {
            let mut next = Vec::new();
            for pair in acc.chunks(2) {
                next.push(if pair.len() == 2 {
                    b.or(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            acc = next;
        }
        b.output(acc[0]);
        let c = b.finish();
        let r = cost(&c);
        assert_eq!(r.level_widths.iter().sum::<u32>() as u64, r.gates);
        let hist = r.width_histogram();
        assert_eq!(
            hist.iter().map(|(_, n)| n).sum::<u32>() as usize,
            r.level_widths.len()
        );
        assert!(hist.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
