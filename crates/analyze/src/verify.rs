//! Exhaustive structural verification and optimization-opportunity
//! detection.
//!
//! [`Circuit::validate`] stops at the first structural error; this pass
//! reports *every* violation, and — when the structure is sound — layers
//! efficiency warnings on top: dead gates, constant-foldable cones,
//! duplicate (CSE-candidate) gates, duplicate and constant outputs. Each
//! warning class is exactly what a [`deepsecure_circuit::Builder`] replay
//! (`passes::optimize`) would clean up, so the reports are the analysis
//! front-end for the pruning pipeline: they say how many non-free gates and
//! garbled-table bytes re-synthesis would save *before* anyone pays them.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use deepsecure_circuit::{
    Circuit, DiagCode, DiagLoc, Diagnostic, Gate, GateKind, Wire, CONST_0, CONST_1,
};

/// Cap on materialized diagnostics per [`DiagCode`]; a million-gate import
/// with systematic damage would otherwise allocate a diagnostic per gate.
/// Exact per-class totals always live in [`OptReport`].
pub const MAX_DIAGNOSTICS_PER_CODE: usize = 50;

/// What deleting one class of redundant gates would save.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Savings {
    /// Gates in the class (free and non-free).
    pub gates: u64,
    /// Non-free (AND/NAND/OR/NOR) gates in the class.
    pub non_free_gates: u64,
    /// Garbled-table bytes the non-free gates cost per cycle (32 each under
    /// half-gates).
    pub table_bytes: u64,
}

impl Savings {
    fn count(&mut self, g: &Gate) {
        self.gates += 1;
        if !g.kind.is_free() {
            self.non_free_gates += 1;
            self.table_bytes += 32;
        }
    }
}

/// Optimization opportunities a [`deepsecure_circuit::Builder`] replay
/// would realize, as exact totals (unlike the capped diagnostic list).
///
/// The classes overlap — a dead duplicate gate counts in both `dead` and
/// `duplicate` — so each is an independent upper bound, not a sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Gates whose output reaches no circuit output or live register.
    pub dead: Savings,
    /// Gates in constant cones (output statically known, or an input is
    /// statically known so the gate strength-reduces away).
    pub constant: Savings,
    /// Gates structurally identical to an earlier gate (commutative inputs
    /// normalized) — common-subexpression candidates.
    pub duplicate: Savings,
}

/// Internal result of the full verification pipeline.
#[derive(Clone, Debug)]
pub(crate) struct VerifyOutcome {
    pub diagnostics: Vec<Diagnostic>,
    pub opportunities: Option<OptReport>,
    pub structurally_sound: bool,
}

/// Collects diagnostics with a per-code cap.
#[derive(Default)]
struct Emitter {
    diagnostics: Vec<Diagnostic>,
    counts: HashMap<DiagCode, u64>,
    errors: u64,
}

impl Emitter {
    fn emit(&mut self, code: DiagCode, loc: DiagLoc, message: String) {
        let seen = self.counts.entry(code).or_insert(0);
        *seen += 1;
        if code.severity() == deepsecure_circuit::Severity::Error {
            self.errors += 1;
        }
        if (*seen as usize) <= MAX_DIAGNOSTICS_PER_CODE {
            self.diagnostics.push(Diagnostic::new(code, loc, message));
        }
    }
}

/// Runs the exhaustive verification pass and returns all diagnostics
/// (errors first, then warnings; at most [`MAX_DIAGNOSTICS_PER_CODE`] per
/// code). An empty result means the circuit is structurally valid *and*
/// carries no statically-detectable waste.
pub fn verify(circuit: &Circuit) -> Vec<Diagnostic> {
    verify_full(circuit).diagnostics
}

pub(crate) fn verify_full(circuit: &Circuit) -> VerifyOutcome {
    let mut em = Emitter::default();
    structural_pass(circuit, &mut em);
    if em.errors > 0 {
        return VerifyOutcome {
            diagnostics: em.diagnostics,
            opportunities: None,
            structurally_sound: false,
        };
    }
    let opportunities = warning_pass(circuit, &mut em);
    VerifyOutcome {
        diagnostics: em.diagnostics,
        opportunities: Some(opportunities),
        structurally_sound: true,
    }
}

/// Mirrors [`Circuit::validate`] check-for-check but keeps going after the
/// first violation so a broken import is diagnosed in one shot.
fn structural_pass(circuit: &Circuit, em: &mut Emitter) {
    let n = circuit.wire_count();
    let mut driven = vec![false; n.max(2)];
    if CONST_1.index() >= n {
        em.emit(
            DiagCode::SourceOutOfBounds,
            DiagLoc::Source(CONST_1),
            format!("constant wires need wire_count >= 2, have {n}"),
        );
        return;
    }
    driven[CONST_0.index()] = true;
    driven[CONST_1.index()] = true;

    for w in circuit
        .garbler_inputs()
        .iter()
        .chain(circuit.evaluator_inputs())
        .chain(circuit.registers().iter().map(|r| &r.q))
    {
        if w.index() >= n {
            em.emit(
                DiagCode::SourceOutOfBounds,
                DiagLoc::Source(*w),
                format!("source {w:?} out of bounds (wire_count {n})"),
            );
        } else if driven[w.index()] {
            em.emit(
                DiagCode::DuplicateSource,
                DiagLoc::Source(*w),
                format!("source {w:?} declared twice"),
            );
        } else {
            driven[w.index()] = true;
        }
    }

    for (i, g) in circuit.gates().iter().enumerate() {
        for w in [g.a, g.b] {
            if w.index() >= n {
                em.emit(
                    DiagCode::InputOutOfBounds,
                    DiagLoc::Gate(i),
                    format!("input {w:?} out of bounds (wire_count {n})"),
                );
            } else if !driven[w.index()] {
                em.emit(
                    DiagCode::UseBeforeDef,
                    DiagLoc::Gate(i),
                    format!("input {w:?} not yet driven"),
                );
            }
        }
        if !g.kind.is_binary() && g.b != g.a {
            em.emit(
                DiagCode::UnaryArity,
                DiagLoc::Gate(i),
                format!(
                    "unary {} gate has b = {:?} != a = {:?}",
                    g.kind.name(),
                    g.b,
                    g.a
                ),
            );
        }
        if g.out.index() >= n {
            em.emit(
                DiagCode::OutputOutOfBounds,
                DiagLoc::Gate(i),
                format!("output {:?} out of bounds (wire_count {n})", g.out),
            );
        } else if driven[g.out.index()] {
            em.emit(
                DiagCode::DuplicateDriver,
                DiagLoc::Gate(i),
                format!("output {:?} already driven", g.out),
            );
        } else {
            driven[g.out.index()] = true;
        }
    }

    for (i, w) in circuit.outputs().iter().enumerate() {
        if w.index() >= n || !driven[w.index()] {
            em.emit(
                DiagCode::UndrivenSink,
                DiagLoc::Output(i),
                format!("output {w:?} not driven"),
            );
        }
    }
    for (i, r) in circuit.registers().iter().enumerate() {
        if r.d.index() >= n || !driven[r.d.index()] {
            em.emit(
                DiagCode::UndrivenSink,
                DiagLoc::Register(i),
                format!("register data input {:?} not driven", r.d),
            );
        }
    }
}

/// Efficiency warnings over a structurally-sound circuit. Each check mirrors
/// one of the [`deepsecure_circuit::Builder`]'s online optimizations, so a
/// builder-produced circuit is warning-free by construction.
fn warning_pass(circuit: &Circuit, em: &mut Emitter) -> OptReport {
    let mut opp = OptReport::default();
    let n = circuit.wire_count();
    let gates = circuit.gates();

    // DS-W04: the same wire listed as an output more than once.
    let mut seen_outputs: HashMap<Wire, usize> = HashMap::new();
    for (i, w) in circuit.outputs().iter().enumerate() {
        match seen_outputs.entry(*w) {
            Entry::Vacant(v) => {
                v.insert(i);
            }
            Entry::Occupied(first) => em.emit(
                DiagCode::DuplicateOutput,
                DiagLoc::Output(i),
                format!("wire {w:?} already listed as output {}", first.get()),
            ),
        }
    }

    // DS-W05: sinks tied directly to a constant wire.
    let is_const = |w: Wire| w == CONST_0 || w == CONST_1;
    for (i, w) in circuit.outputs().iter().enumerate() {
        if is_const(*w) {
            em.emit(
                DiagCode::ConstantSink,
                DiagLoc::Output(i),
                format!("output tied to constant {w:?}"),
            );
        }
    }
    for (i, r) in circuit.registers().iter().enumerate() {
        if is_const(r.d) {
            em.emit(
                DiagCode::ConstantSink,
                DiagLoc::Register(i),
                format!("register data input tied to constant {:?}", r.d),
            );
        }
    }

    // DS-W01: liveness fixed point matching Builder::finish — outputs are
    // roots, and a register whose q is live makes its d a root (so a dead
    // register's whole feed cone is reported, exactly what re-synthesis
    // deletes).
    let mut live = vec![false; n];
    for w in circuit.outputs() {
        live[w.index()] = true;
    }
    loop {
        for g in gates.iter().rev() {
            if live[g.out.index()] {
                live[g.a.index()] = true;
                live[g.b.index()] = true;
            }
        }
        let mut changed = false;
        for r in circuit.registers() {
            if live[r.q.index()] && !live[r.d.index()] {
                live[r.d.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (i, g) in gates.iter().enumerate() {
        if !live[g.out.index()] {
            opp.dead.count(g);
            em.emit(
                DiagCode::DeadGate,
                DiagLoc::Gate(i),
                format!(
                    "{} gate output {:?} reaches no output or live register",
                    g.kind.name(),
                    g.out
                ),
            );
        }
    }

    // DS-W02: constant-cone propagation. Any gate with a statically-known
    // input strength-reduces to a copy, complement or constant, and the
    // known-ness propagates forward through the cone.
    let mut known: Vec<Option<bool>> = vec![None; n];
    known[CONST_0.index()] = Some(false);
    known[CONST_1.index()] = Some(true);
    for (i, g) in gates.iter().enumerate() {
        let ka = known[g.a.index()];
        let kb = known[g.b.index()];
        let flagged = if g.kind.is_binary() {
            ka.is_some() || kb.is_some()
        } else {
            ka.is_some()
        };
        known[g.out.index()] = fold(g.kind, ka, kb);
        if flagged {
            opp.constant.count(g);
            em.emit(
                DiagCode::ConstantFoldable,
                DiagLoc::Gate(i),
                match known[g.out.index()] {
                    Some(v) => format!(
                        "{} gate output {:?} is statically {}",
                        g.kind.name(),
                        g.out,
                        u8::from(v)
                    ),
                    None => format!(
                        "{} gate reads a statically-known wire and reduces to a copy",
                        g.kind.name()
                    ),
                },
            );
        }
    }

    // DS-W03: structural duplicates under the Builder's hash-consing key
    // (commutative inputs sorted; unary keyed on the single input).
    let mut cse: HashMap<(GateKind, Wire, Wire), usize> = HashMap::new();
    for (i, g) in gates.iter().enumerate() {
        let key = if g.kind.is_binary() {
            (g.kind, g.a.min(g.b), g.a.max(g.b))
        } else {
            (g.kind, g.a, g.a)
        };
        match cse.entry(key) {
            Entry::Vacant(v) => {
                v.insert(i);
            }
            Entry::Occupied(first) => {
                opp.duplicate.count(g);
                em.emit(
                    DiagCode::DuplicateGate,
                    DiagLoc::Gate(i),
                    format!(
                        "{} gate duplicates gate {} (same kind and inputs)",
                        g.kind.name(),
                        first.get()
                    ),
                );
            }
        }
    }

    opp
}

/// Three-valued truth function: `None` = statically unknown.
fn fold(kind: GateKind, a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match kind {
        GateKind::Xor => Some(a? ^ b?),
        GateKind::Xnor => Some(!(a? ^ b?)),
        GateKind::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        GateKind::Nand => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(true),
            (Some(true), Some(true)) => Some(false),
            _ => None,
        },
        GateKind::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        GateKind::Nor => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(false),
            (Some(false), Some(false)) => Some(true),
            _ => None,
        },
        GateKind::Not => Some(!a?),
        GateKind::Buf => a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsecure_circuit::{Builder, Register};

    fn raw(wire_count: u32, garbler: Vec<Wire>, outputs: Vec<Wire>, gates: Vec<Gate>) -> Circuit {
        Circuit::from_raw_parts(wire_count, garbler, vec![], outputs, gates, vec![])
    }

    fn gate(kind: GateKind, a: u32, b: u32, out: u32) -> Gate {
        Gate {
            kind,
            a: Wire(a),
            b: Wire(b),
            out: Wire(out),
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn reports_all_structural_errors_not_just_first() {
        // Gate 0 reads an out-of-bounds wire AND gate 1 re-drives a source.
        let c = raw(
            4,
            vec![Wire(2)],
            vec![Wire(3)],
            vec![gate(GateKind::And, 2, 9, 3), gate(GateKind::Xor, 2, 2, 2)],
        );
        let diags = verify(&c);
        let cs = codes(&diags);
        assert!(cs.contains(&DiagCode::InputOutOfBounds), "{diags:?}");
        assert!(cs.contains(&DiagCode::DuplicateDriver), "{diags:?}");
        // validate() agrees something is wrong (first error only).
        assert!(c.validate().is_err());
    }

    #[test]
    fn use_before_def_matches_validate() {
        let c = raw(
            5,
            vec![Wire(2)],
            vec![Wire(4)],
            vec![
                gate(GateKind::And, 2, 3, 4), // w3 defined by the *next* gate
                gate(GateKind::Xor, 2, 2, 3),
            ],
        );
        let diags = verify(&c);
        assert!(codes(&diags).contains(&DiagCode::UseBeforeDef), "{diags:?}");
        assert_eq!(c.validate().unwrap_err().code, DiagCode::UseBeforeDef);
    }

    #[test]
    fn unary_arity_is_an_error() {
        let c = raw(
            5,
            vec![Wire(2), Wire(3)],
            vec![Wire(4)],
            vec![gate(GateKind::Not, 2, 3, 4)],
        );
        let diags = verify(&c);
        assert_eq!(codes(&diags), vec![DiagCode::UnaryArity]);
        assert_eq!(c.validate().unwrap_err().code, DiagCode::UnaryArity);
    }

    #[test]
    fn dead_constant_and_duplicate_warnings_with_savings() {
        // w4 = a AND b (live), w5 = b AND a (duplicate of w4, dead),
        // w6 = a AND c0 (constant-foldable, dead).
        let c = raw(
            7,
            vec![Wire(2), Wire(3)],
            vec![Wire(4)],
            vec![
                gate(GateKind::And, 2, 3, 4),
                gate(GateKind::And, 3, 2, 5),
                gate(GateKind::And, 2, 0, 6),
            ],
        );
        let out = verify_full(&c);
        assert!(out.structurally_sound);
        let cs = codes(&out.diagnostics);
        assert!(cs.contains(&DiagCode::DeadGate));
        assert!(cs.contains(&DiagCode::ConstantFoldable));
        assert!(cs.contains(&DiagCode::DuplicateGate));
        let opp = out.opportunities.unwrap();
        assert_eq!(opp.dead.gates, 2);
        assert_eq!(opp.dead.table_bytes, 64);
        assert_eq!(
            opp.constant,
            Savings {
                gates: 1,
                non_free_gates: 1,
                table_bytes: 32
            }
        );
        assert_eq!(
            opp.duplicate,
            Savings {
                gates: 1,
                non_free_gates: 1,
                table_bytes: 32
            }
        );
        // The builder replay actually realizes the savings.
        let opt = deepsecure_circuit::passes::optimize(&c);
        assert_eq!(opt.stats().non_xor, 1);
    }

    #[test]
    fn constant_cones_propagate() {
        // w4 = a XOR c1 (reduces to NOT a), w5 = w4 AND c0-cone: w5 = w4 AND w6
        // where w6 = c0 XOR c0 is statically 0, so w5 is statically 0 too.
        let c = raw(
            8,
            vec![Wire(2)],
            vec![Wire(5)],
            vec![
                gate(GateKind::Xor, 2, 1, 4),
                gate(GateKind::Xor, 0, 0, 6),
                gate(GateKind::And, 4, 6, 5),
            ],
        );
        let out = verify_full(&c);
        assert!(out.structurally_sound);
        let opp = out.opportunities.unwrap();
        // All three gates sit in constant cones.
        assert_eq!(opp.constant.gates, 3);
        assert_eq!(opp.constant.non_free_gates, 1);
    }

    #[test]
    fn duplicate_and_constant_outputs_warn() {
        let c = raw(
            4,
            vec![Wire(2)],
            vec![Wire(3), Wire(3), Wire(1)],
            vec![gate(GateKind::Not, 2, 2, 3)],
        );
        let cs = codes(&verify(&c));
        assert!(cs.contains(&DiagCode::DuplicateOutput));
        assert!(cs.contains(&DiagCode::ConstantSink));
    }

    #[test]
    fn dead_register_cone_is_reported() {
        // Register q=w3 latches w4 = NOT input, but q feeds nothing and is
        // not an output: the whole cone is dead, as Builder would delete it.
        let c = Circuit::from_raw_parts(
            6,
            vec![Wire(2)],
            vec![],
            vec![Wire(5)],
            vec![gate(GateKind::Not, 2, 2, 4), gate(GateKind::Buf, 2, 2, 5)],
            vec![Register {
                d: Wire(4),
                q: Wire(3),
                init: false,
            }],
        );
        let out = verify_full(&c);
        assert!(out.structurally_sound, "{:?}", out.diagnostics);
        assert_eq!(out.opportunities.unwrap().dead.gates, 1);
    }

    #[test]
    fn builder_circuits_are_warning_free() {
        let mut b = Builder::new();
        let xs = b.garbler_inputs(8);
        let ys = b.evaluator_inputs(8);
        let mut acc = b.const0();
        for (x, y) in xs.iter().zip(&ys) {
            let t = b.and(*x, *y);
            let u = b.and(*y, *x); // CSE'd
            let v = b.xor(t, u); // folds to 0
            let w = b.or(v, t); // reduces to t
            acc = b.xor(acc, w);
        }
        b.output(acc);
        let c = b.finish();
        assert_eq!(verify(&c), vec![]);
    }

    #[test]
    fn diagnostics_cap_per_code() {
        // 60 dead NOT gates -> 50 materialized diagnostics, exact total in
        // the opportunity report.
        let mut gates = Vec::new();
        for i in 0..60u32 {
            gates.push(gate(GateKind::Not, 2, 2, 4 + i));
        }
        gates.push(gate(GateKind::Buf, 2, 2, 3));
        let c = raw(64, vec![Wire(2)], vec![Wire(3)], gates);
        let out = verify_full(&c);
        let dead: Vec<_> = out
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::DeadGate)
            .collect();
        assert_eq!(dead.len(), MAX_DIAGNOSTICS_PER_CODE);
        assert_eq!(out.opportunities.unwrap().dead.gates, 60);
    }
}
