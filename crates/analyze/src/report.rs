//! Human- and machine-readable rendering of [`Analysis`] results.
//!
//! Shared by the `circuit_lint`, `two_party` and `deepsecure_serve`
//! binaries so every surface prints identical numbers. The JSON emitter is
//! hand-rolled (the workspace is offline and carries no serde); the schema
//! is flat and stable so shell pipelines can `grep`/`jq` the output and
//! `BENCH_RESULTS.json` can track the perf trajectory across PRs.

use std::fmt::Write as _;

use crate::{Analysis, Savings};

/// Chunk sizes reported by default: buffered, the CI cross-check size, and
/// the streaming default used in the serving benchmarks.
pub const DEFAULT_CHUNK_SIZES: &[usize] = &[0, 1024, 8192];

/// Renders one circuit's analysis as a short human-readable block.
pub fn render_text(name: &str, a: &Analysis, chunks: &[usize]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== {name} ==");
    if let Some(c) = &a.cost {
        let _ = writeln!(
            s,
            "  wires {}, gates {} ({} free + {} non-free)",
            c.wires, c.gates, c.free_gates, c.non_free_gates
        );
        let _ = writeln!(
            s,
            "  tables {} B/cycle, depth {} (non-XOR depth {}), widest level {} of {}",
            c.table_bytes,
            c.depth,
            c.non_xor_depth,
            c.max_level_width(),
            c.level_widths.len()
        );
        let mut peaks = String::new();
        for (i, &chunk) in chunks.iter().enumerate() {
            if i > 0 {
                peaks.push_str(", ");
            }
            let label = if chunk == 0 {
                "buffered".to_string()
            } else {
                format!("chunk {chunk}")
            };
            let _ = write!(peaks, "{label} -> {} B", c.peak_resident_table_bytes(chunk));
        }
        let _ = writeln!(s, "  peak resident tables: {peaks}");
    }
    if let Some(o) = &a.opportunities {
        let render = |sv: &Savings| {
            format!(
                "{} gates ({} non-free, {} table B)",
                sv.gates, sv.non_free_gates, sv.table_bytes
            )
        };
        if o.dead.gates + o.constant.gates + o.duplicate.gates == 0 {
            let _ = writeln!(s, "  opportunities: none");
        } else {
            let _ = writeln!(
                s,
                "  opportunities: dead {}; constant {}; duplicate {}",
                render(&o.dead),
                render(&o.constant),
                render(&o.duplicate)
            );
        }
    }
    if a.diagnostics.is_empty() {
        let _ = writeln!(s, "  diagnostics: none");
    } else {
        let _ = writeln!(
            s,
            "  diagnostics: {} error(s), {} warning(s)",
            a.error_count(),
            a.warning_count()
        );
        for d in &a.diagnostics {
            let _ = writeln!(s, "    {d}");
        }
    }
    s
}

/// Renders a set of analyses as one stable JSON document
/// (`deepsecure-analyze/1` schema).
pub fn render_json(models: &[(String, Analysis)], chunks: &[usize]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"deepsecure-analyze/1\",\n  \"models\": {\n");
    for (mi, (name, a)) in models.iter().enumerate() {
        let _ = writeln!(s, "    {}: {{", json_str(name));
        let _ = write!(
            s,
            "      \"errors\": {},\n      \"warnings\": {}",
            a.error_count(),
            a.warning_count()
        );
        if !a.diagnostics.is_empty() {
            s.push_str(",\n      \"diagnostics\": [");
            for (i, d) in a.diagnostics.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\n        {{\"code\": {}, \"severity\": {}, \"detail\": {}}}",
                    json_str(d.code.as_str()),
                    json_str(&d.severity().to_string()),
                    json_str(&d.to_string())
                );
            }
            s.push_str("\n      ]");
        }
        if let Some(c) = &a.cost {
            let _ = write!(
                s,
                ",\n      \"wires\": {},\n      \"gates\": {},\n      \"free_gates\": {},\n      \"non_free_gates\": {},\n      \"table_bytes\": {},\n      \"depth\": {},\n      \"non_xor_depth\": {},\n      \"levels\": {},\n      \"max_level_width\": {}",
                c.wires,
                c.gates,
                c.free_gates,
                c.non_free_gates,
                c.table_bytes,
                c.depth,
                c.non_xor_depth,
                c.level_widths.len(),
                c.max_level_width()
            );
            s.push_str(",\n      \"width_histogram\": [");
            for (i, (cap, n)) in c.width_histogram().iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{cap}, {n}]");
            }
            s.push_str("],\n      \"peak_resident_table_bytes\": {");
            for (i, &chunk) in chunks.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{chunk}\": {}", c.peak_resident_table_bytes(chunk));
            }
            s.push('}');
        }
        if let Some(o) = &a.opportunities {
            let sv = |sv: &Savings| {
                format!(
                    "{{\"gates\": {}, \"non_free_gates\": {}, \"table_bytes\": {}}}",
                    sv.gates, sv.non_free_gates, sv.table_bytes
                )
            };
            let _ = write!(
                s,
                ",\n      \"opportunities\": {{\"dead\": {}, \"constant\": {}, \"duplicate\": {}}}",
                sv(&o.dead),
                sv(&o.constant),
                sv(&o.duplicate)
            );
        }
        s.push_str("\n    }");
        if mi + 1 < models.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  }\n}\n");
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use deepsecure_circuit::Builder;

    fn sample() -> Analysis {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        b.output(z);
        analyze(&b.finish())
    }

    #[test]
    fn text_report_mentions_the_key_numbers() {
        let a = sample();
        let text = render_text("half_and", &a, DEFAULT_CHUNK_SIZES);
        assert!(text.contains("== half_and =="));
        assert!(text.contains("1 non-free"));
        assert!(text.contains("tables 32 B/cycle"));
        assert!(text.contains("diagnostics: none"));
    }

    #[test]
    fn json_report_is_stable_and_escaped() {
        let a = sample();
        let json = render_json(&[("m\"1".to_string(), a)], &[0, 1024]);
        assert!(json.contains("\"schema\": \"deepsecure-analyze/1\""));
        assert!(json.contains("\"m\\\"1\""));
        assert!(json.contains("\"non_free_gates\": 1"));
        assert!(json.contains("\"peak_resident_table_bytes\": {\"0\": 32, \"1024\": 32}"));
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
    }
}
