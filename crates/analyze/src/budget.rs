//! Table-byte regression budget: the CI ratchet that keeps the zoo from
//! quietly growing garbling material.
//!
//! `BENCH_RESULTS.json` pins each model's `non_free_gates` / `table_bytes`
//! as measured when the snapshot was last regenerated. CI re-runs
//! `circuit_lint --model all --json` on every push and feeds both
//! documents through [`check`]: any model whose fresh cost exceeds the
//! committed baseline fails the gate, and a model present on one side but
//! not the other fails too (a stale snapshot is as useless as a regressed
//! one). Improvements pass but are called out so the snapshot can be
//! ratcheted *down* in the same PR.
//!
//! The workspace is offline and carries no serde, so this module includes
//! a minimal recursive-descent JSON reader — just enough for the two
//! schemas it consumes (`deepsecure-analyze/1` and
//! `deepsecure-bench-results/1`, whose analyzer section nests the former
//! under `"analyzer"`).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64`; every count this
/// module cares about (≤ a few hundred million table bytes) is far below
/// 2^53, so the round-trip is exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in our schemas;
                            // map lone surrogates to U+FFFD rather than
                            // rejecting the document.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape {:?} at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// The two ratcheted costs of one model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelCost {
    /// Non-free (AND-equivalent) gate count.
    pub non_free_gates: u64,
    /// Garbled-table bytes per inference (`32 * non_free_gates`).
    pub table_bytes: u64,
}

/// Extracts per-model costs from either supported document: the analyzer's
/// own `deepsecure-analyze/1` output (top-level `"models"`) or the
/// committed `deepsecure-bench-results/1` snapshot (nested under
/// `"analyzer"`).
///
/// # Errors
///
/// Returns a message when the models table is missing or a model lacks
/// integer `non_free_gates` / `table_bytes` fields.
pub fn model_costs(doc: &Json) -> Result<BTreeMap<String, ModelCost>, String> {
    let models = doc
        .get("models")
        .or_else(|| doc.get("analyzer").and_then(|a| a.get("models")))
        .ok_or("no \"models\" table (looked at top level and under \"analyzer\")")?;
    let Json::Obj(members) = models else {
        return Err("\"models\" is not an object".to_string());
    };
    let mut out = BTreeMap::new();
    for (name, m) in members {
        let field = |key: &str| {
            m.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("model {name:?}: missing integer field {key:?}"))
        };
        out.insert(
            name.clone(),
            ModelCost {
                non_free_gates: field("non_free_gates")?,
                table_bytes: field("table_bytes")?,
            },
        );
    }
    Ok(out)
}

/// One line of the budget comparison.
#[derive(Clone, Debug)]
pub struct BudgetRow {
    /// Model name.
    pub model: String,
    /// What happened to this model's cost.
    pub status: BudgetStatus,
}

/// Per-model outcome of the ratchet comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetStatus {
    /// Fresh costs equal the baseline exactly.
    Unchanged(ModelCost),
    /// Fresh costs shrank — passes, but the snapshot should be ratcheted
    /// down to lock in the win.
    Improved {
        /// Committed baseline cost.
        baseline: ModelCost,
        /// Freshly measured cost.
        fresh: ModelCost,
    },
    /// Fresh costs grew — fails the gate.
    Regressed {
        /// Committed baseline cost.
        baseline: ModelCost,
        /// Freshly measured cost.
        fresh: ModelCost,
    },
    /// In the baseline but not the fresh run — stale snapshot, fails.
    MissingFromFresh(ModelCost),
    /// In the fresh run but not the baseline — unpinned model, fails
    /// (add it to the snapshot so it is ratcheted too).
    MissingFromBaseline(ModelCost),
}

/// Result of comparing a fresh analyzer run against the committed
/// baseline.
#[derive(Clone, Debug)]
pub struct BudgetReport {
    /// One row per model name seen on either side, sorted by name.
    pub rows: Vec<BudgetRow>,
}

impl BudgetReport {
    /// `true` when every model is unchanged or improved.
    pub fn within_budget(&self) -> bool {
        self.rows.iter().all(|r| {
            matches!(
                r.status,
                BudgetStatus::Unchanged(_) | BudgetStatus::Improved { .. }
            )
        })
    }
}

impl fmt::Display for BudgetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            let name = &row.model;
            match &row.status {
                BudgetStatus::Unchanged(c) => writeln!(
                    f,
                    "  OK        {name}: {} non-free gates, {} table B (unchanged)",
                    c.non_free_gates, c.table_bytes
                )?,
                BudgetStatus::Improved { baseline, fresh } => writeln!(
                    f,
                    "  IMPROVED  {name}: table bytes {} -> {} ({} saved) — ratchet the snapshot down",
                    baseline.table_bytes,
                    fresh.table_bytes,
                    baseline.table_bytes - fresh.table_bytes
                )?,
                BudgetStatus::Regressed { baseline, fresh } => writeln!(
                    f,
                    "  REGRESSED {name}: non-free gates {} -> {}, table bytes {} -> {} (+{} B over budget)",
                    baseline.non_free_gates,
                    fresh.non_free_gates,
                    baseline.table_bytes,
                    fresh.table_bytes,
                    fresh.table_bytes.saturating_sub(baseline.table_bytes)
                )?,
                BudgetStatus::MissingFromFresh(c) => writeln!(
                    f,
                    "  STALE     {name}: pinned at {} table B but absent from the fresh run — regenerate the snapshot",
                    c.table_bytes
                )?,
                BudgetStatus::MissingFromBaseline(c) => writeln!(
                    f,
                    "  UNPINNED  {name}: fresh run reports {} table B but the snapshot does not pin it — add it",
                    c.table_bytes
                )?,
            }
        }
        Ok(())
    }
}

/// Compares a fresh analyzer run against the committed baseline: growth in
/// either metric fails, as does a model present on only one side.
pub fn check(
    baseline: &BTreeMap<String, ModelCost>,
    fresh: &BTreeMap<String, ModelCost>,
) -> BudgetReport {
    let mut names: Vec<&String> = baseline.keys().chain(fresh.keys()).collect();
    names.sort();
    names.dedup();
    let rows = names
        .into_iter()
        .map(|name| {
            let status = match (baseline.get(name), fresh.get(name)) {
                (Some(&b), Some(&f)) => {
                    if f == b {
                        BudgetStatus::Unchanged(f)
                    } else if f.table_bytes > b.table_bytes || f.non_free_gates > b.non_free_gates {
                        BudgetStatus::Regressed {
                            baseline: b,
                            fresh: f,
                        }
                    } else {
                        BudgetStatus::Improved {
                            baseline: b,
                            fresh: f,
                        }
                    }
                }
                (Some(&b), None) => BudgetStatus::MissingFromFresh(b),
                (None, Some(&f)) => BudgetStatus::MissingFromBaseline(f),
                (None, None) => unreachable!("name came from one of the maps"),
            };
            BudgetRow {
                model: name.clone(),
                status,
            }
        })
        .collect();
    BudgetReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRESH: &str = r#"{
      "schema": "deepsecure-analyze/1",
      "models": {
        "tiny_mlp": {"errors": 0, "non_free_gates": 600259, "table_bytes": 19208288},
        "mnist_mlp_c": {"errors": 0, "non_free_gates": 510175, "table_bytes": 16325600}
      }
    }"#;

    const BASELINE: &str = r#"{
      "schema": "deepsecure-bench-results/1",
      "analyzer": {
        "models": {
          "tiny_mlp": {"non_free_gates": 600259, "table_bytes": 19208288},
          "mnist_mlp_c": {"non_free_gates": 510175, "table_bytes": 16325600}
        }
      }
    }"#;

    fn costs(text: &str) -> BTreeMap<String, ModelCost> {
        model_costs(&Json::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn parser_handles_the_snapshot_shapes() {
        let doc = Json::parse(BASELINE).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("deepsecure-bench-results/1")
        );
        let v = Json::parse(r#"[true, false, null, -2.5e1, "aA\n"]"#).unwrap();
        assert_eq!(
            v,
            Json::Arr(vec![
                Json::Bool(true),
                Json::Bool(false),
                Json::Null,
                Json::Num(-25.0),
                Json::Str("aA\n".to_string()),
            ])
        );
        assert!(Json::parse("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(Json::parse("{} extra").is_err(), "trailing garbage");
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn extracts_costs_from_both_schemas() {
        let fresh = costs(FRESH);
        let base = costs(BASELINE);
        assert_eq!(fresh, base);
        assert_eq!(
            fresh["mnist_mlp_c"],
            ModelCost {
                non_free_gates: 510175,
                table_bytes: 16325600
            }
        );
        let err = model_costs(&Json::parse("{\"models\": {\"m\": {}}}").unwrap()).unwrap_err();
        assert!(err.contains("non_free_gates"), "{err}");
    }

    #[test]
    fn identical_costs_are_within_budget() {
        let report = check(&costs(BASELINE), &costs(FRESH));
        assert!(report.within_budget(), "{report}");
        assert!(report.to_string().contains("OK"));
    }

    #[test]
    fn growth_in_either_metric_regresses() {
        let base = costs(BASELINE);
        let mut fresh = costs(FRESH);
        fresh.get_mut("tiny_mlp").unwrap().table_bytes += 32;
        fresh.get_mut("tiny_mlp").unwrap().non_free_gates += 1;
        let report = check(&base, &fresh);
        assert!(!report.within_budget());
        assert!(
            report.to_string().contains("REGRESSED tiny_mlp"),
            "{report}"
        );
        // Shrinkage passes but is flagged for ratcheting.
        let mut smaller = costs(FRESH);
        smaller.get_mut("tiny_mlp").unwrap().table_bytes -= 32;
        smaller.get_mut("tiny_mlp").unwrap().non_free_gates -= 1;
        let report = check(&base, &smaller);
        assert!(report.within_budget(), "{report}");
        assert!(
            report.to_string().contains("IMPROVED  tiny_mlp"),
            "{report}"
        );
    }

    #[test]
    fn models_on_only_one_side_fail() {
        let base = costs(BASELINE);
        let mut fresh = costs(FRESH);
        fresh.remove("mnist_mlp_c");
        fresh.insert(
            "brand_new".to_string(),
            ModelCost {
                non_free_gates: 1,
                table_bytes: 32,
            },
        );
        let report = check(&base, &fresh);
        assert!(!report.within_budget());
        let text = report.to_string();
        assert!(text.contains("STALE     mnist_mlp_c"), "{text}");
        assert!(text.contains("UNPINNED  brand_new"), "{text}");
    }
}
