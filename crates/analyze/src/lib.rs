//! Static analysis for DeepSecure circuits.
//!
//! DeepSecure's scalability story rests on knowing, *before* any party
//! connects, exactly what a circuit costs — non-XOR gates, garbled-table
//! bytes, depth, peak resident memory — and on trimming what can be proven
//! dead or constant. This crate is the analysis front-end for that work:
//!
//! * [`verify`] runs the structural checks behind
//!   [`Circuit::validate`](deepsecure_circuit::Circuit::validate)
//!   exhaustively (every violation, not just the first) and layers
//!   efficiency warnings on top: dead gates, constant-foldable cones,
//!   duplicate (CSE-candidate) gates, duplicate and constant outputs.
//! * [`cost`] predicts the garbling cost of a clean circuit statically —
//!   the numbers are cross-checked in tests against the garbler's measured
//!   `nonfree_gate_count`, wire-byte breakdown and `peak_material_bytes`,
//!   so the analyzer can never drift from runtime.
//! * [`srclint`] is a token-level source lint that denies
//!   `unwrap()`/`expect()`/`panic!` on protocol and channel paths, with a
//!   checked-in allowlist for the audited exceptions.
//!
//! The `circuit_lint` binary (in the `deepsecure` facade package) exposes
//! all of this on the command line; CI runs it over every zoo model with
//! warnings denied.
//!
//! # Example
//!
//! ```
//! use deepsecure_circuit::Builder;
//! use deepsecure_analyze::analyze;
//!
//! let mut b = Builder::new();
//! let x = b.garbler_input();
//! let y = b.evaluator_input();
//! let z = b.and(x, y);
//! b.output(z);
//! let c = b.finish();
//!
//! let report = analyze(&c);
//! assert!(report.is_clean());
//! let cost = report.cost.unwrap();
//! assert_eq!(cost.non_free_gates, 1);
//! assert_eq!(cost.table_bytes, 32); // two 128-bit ciphertexts
//! ```

pub mod budget;
pub mod cost;
pub mod report;
pub mod srclint;
pub mod verify;

pub use cost::{cost, CostReport};
// Re-export the structured diagnostic types so analyzer consumers need only
// this crate (satellite: `Diagnostic` lives in `deepsecure-circuit`, where
// `Circuit::validate` produces it, and is surfaced here).
pub use deepsecure_circuit::{DiagCode, DiagLoc, Diagnostic, Severity};
pub use verify::{verify, OptReport, Savings, MAX_DIAGNOSTICS_PER_CODE};

use deepsecure_circuit::Circuit;

/// The result of a full static analysis of one circuit.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Structural errors and efficiency warnings, errors first. At most
    /// [`MAX_DIAGNOSTICS_PER_CODE`] per code are materialized; exact totals
    /// for the warning classes live in [`Analysis::opportunities`].
    pub diagnostics: Vec<Diagnostic>,
    /// Cost prediction — `None` when structural errors make the gate list
    /// meaningless (out-of-bounds wires, broken topological order).
    pub cost: Option<CostReport>,
    /// Optimization-opportunity totals — `None` under the same condition.
    pub opportunities: Option<OptReport>,
}

impl Analysis {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics materialized (see
    /// [`Analysis::opportunities`] for exact per-class totals).
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether the analysis produced no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs the full analysis pipeline: exhaustive structural verification,
/// then (when the structure is sound) the optimization-opportunity and
/// cost-prediction passes.
pub fn analyze(circuit: &Circuit) -> Analysis {
    let outcome = verify::verify_full(circuit);
    let cost = outcome.structurally_sound.then(|| cost::cost(circuit));
    Analysis {
        diagnostics: outcome.diagnostics,
        cost,
        opportunities: outcome.opportunities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsecure_circuit::Builder;

    #[test]
    fn clean_circuit_analyzes_clean() {
        let mut b = Builder::new();
        let xs = b.garbler_inputs(4);
        let ys = b.evaluator_inputs(4);
        let mut acc = b.const0();
        for (x, y) in xs.iter().zip(&ys) {
            let t = b.and(*x, *y);
            acc = b.xor(acc, t);
        }
        b.output(acc);
        let c = b.finish();

        let a = analyze(&c);
        assert!(a.is_clean(), "diagnostics: {:?}", a.diagnostics);
        let cost = a.cost.expect("clean circuit has a cost report");
        assert_eq!(cost.non_free_gates, c.stats().non_xor);
        assert_eq!(cost.table_bytes, 32 * c.stats().non_xor);
        let opp = a.opportunities.expect("clean circuit has opportunities");
        assert_eq!(opp.dead.gates, 0);
        assert_eq!(opp.constant.gates, 0);
        assert_eq!(opp.duplicate.gates, 0);
    }
}
