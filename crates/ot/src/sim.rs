//! In-process network condition modelling: wrap any [`Channel`] with a
//! configurable latency/bandwidth [`NetModel`] and the protocol pays
//! realistic wall-clock costs without leaving the process — the LAN/WAN
//! rows of the paper-style benchmarks come from this wrapper over
//! `mem_pair`, with no flaky external traffic shaping.
//!
//! # Pacing model
//!
//! Serialization time is charged against a wall-clock **link horizon**
//! (`busy_until`), the instant this endpoint's outbound link finishes
//! draining everything queued so far: each `send` pushes the horizon out
//! by `bytes × 8 / rate` and returns immediately, like a real socket
//! handing bytes to the kernel while the NIC drains asynchronously. The
//! sender only blocks when the horizon matters — on `flush`, and before a
//! *turnaround* receive (a receive that follows this endpoint's sends,
//! whose answer cannot exist until the peer saw those bytes). Compute
//! between sends therefore genuinely overlaps serialization, which is
//! exactly the effect table streaming exploits.
//!
//! Latency is charged **once per turnaround**, never per `send`: a burst
//! of chunked sends in one direction costs one propagation delay at the
//! next turnaround, not a fabricated round trip per chunk (regression
//! test below).

use std::time::{Duration, Instant};

use crate::channel::{Channel, ChannelError};

/// A symmetric link model applied by [`SimChannel`].
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// One-way propagation delay, paid once per turnaround (each receive
    /// that follows this endpoint's sends waits for the peer's message to
    /// travel; back-to-back receives are assumed pipelined).
    pub latency: Duration,
    /// Link rate in bits/second; `None` models an infinitely fast link.
    /// Serialization time (`bytes * 8 / rate`) is charged to the sender's
    /// link horizon (see the module docs).
    pub bits_per_second: Option<u64>,
}

impl NetModel {
    /// An ideal link: no latency, infinite bandwidth (wrapper overhead
    /// only — useful for counter tests).
    pub fn ideal() -> NetModel {
        NetModel {
            latency: Duration::ZERO,
            bits_per_second: None,
        }
    }

    /// The conventional LAN setting: 1 Gbps, 1 ms one-way.
    pub fn lan() -> NetModel {
        NetModel {
            latency: Duration::from_millis(1),
            bits_per_second: Some(1_000_000_000),
        }
    }

    /// The conventional WAN setting: 40 Mbps, 40 ms one-way.
    pub fn wan() -> NetModel {
        NetModel {
            latency: Duration::from_millis(40),
            bits_per_second: Some(40_000_000),
        }
    }

    /// Time to push `bytes` through the link at the modelled rate.
    pub fn serialization_time(&self, bytes: u64) -> Duration {
        match self.bits_per_second {
            Some(bps) => Duration::from_secs_f64(bytes as f64 * 8.0 / bps as f64),
            None => Duration::ZERO,
        }
    }
}

/// Wraps a channel, sleeping to model the [`NetModel`]'s costs.
///
/// Byte counters delegate to the wrapped channel *exactly* — simulation
/// changes when bytes move, never how many.
#[derive(Debug)]
pub struct SimChannel<C: Channel> {
    inner: C,
    model: NetModel,
    /// When this endpoint's outbound link finishes draining everything
    /// sent so far (`None` = nothing in flight).
    busy_until: Option<Instant>,
    /// Whether the next receive is a turnaround (pays one latency).
    turnaround: bool,
    /// Turnarounds paid so far (latency charges; see [`SimChannel::turnarounds`]).
    turnarounds: u64,
}

impl<C: Channel> SimChannel<C> {
    /// Wraps `inner`. Wrap *both* endpoints of a pair so each direction
    /// pays its own costs.
    pub fn new(inner: C, model: NetModel) -> SimChannel<C> {
        SimChannel {
            inner,
            model,
            busy_until: None,
            // The session's first receive waits on a message that had to
            // travel the link.
            turnaround: true,
            turnarounds: 0,
        }
    }

    /// Number of turnarounds this endpoint has paid: receives that
    /// followed this endpoint's sends (or the very first receive), each
    /// charged one propagation latency. This is the direction-change count
    /// of the conversation as seen from this end — e.g. the batched base
    /// OT's three constant flights cost the keypair sender exactly one
    /// turnaround (send C → recv PK0s → send ciphertexts) however many
    /// OTs are in the batch.
    pub fn turnarounds(&self) -> u64 {
        self.turnarounds
    }

    /// The link model in force.
    pub fn model(&self) -> NetModel {
        self.model
    }

    /// Shared access to the wrapped channel.
    pub fn get_ref(&self) -> &C {
        &self.inner
    }

    /// Unwraps the channel, discarding any undrained link horizon.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Blocks until the outbound link has drained (serialization of every
    /// queued byte complete).
    fn drain_link(&mut self) {
        if let Some(t) = self.busy_until.take() {
            let now = Instant::now();
            if t > now {
                std::thread::sleep(t - now);
            }
        }
    }
}

impl<C: Channel> Channel for SimChannel<C> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        self.inner.send(data)?;
        let ser = self.model.serialization_time(data.len() as u64);
        if !ser.is_zero() {
            let now = Instant::now();
            let base = match self.busy_until {
                Some(t) if t > now => t,
                _ => now,
            };
            self.busy_until = Some(base + ser);
        }
        self.turnaround = true;
        Ok(())
    }

    fn recv(&mut self, n: usize) -> Result<Vec<u8>, ChannelError> {
        if self.turnaround {
            // The peer's answer can only follow our fully serialized
            // request; then its reply still has to travel the link.
            self.drain_link();
            if !self.model.latency.is_zero() {
                std::thread::sleep(self.model.latency);
            }
            self.turnaround = false;
            self.turnarounds += 1;
        }
        self.inner.recv(n)
    }

    fn flush(&mut self) -> Result<(), ChannelError> {
        self.inner.flush()?;
        self.drain_link();
        Ok(())
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    use crate::channel::mem_pair;

    use super::*;

    #[test]
    fn counters_match_wrapped_channel_exactly() {
        let (a, b) = mem_pair();
        let mut sa = SimChannel::new(a, NetModel::lan());
        let mut sb = SimChannel::new(b, NetModel::lan());
        sa.send(&[1u8; 300]).unwrap();
        sa.send_u64(42).unwrap();
        sb.send_bits(&[true, false, true]).unwrap();
        assert_eq!(sb.recv(300).unwrap(), vec![1u8; 300]);
        assert_eq!(sb.recv_u64().unwrap(), 42);
        assert_eq!(sa.recv_bits().unwrap(), vec![true, false, true]);
        // The wrapper adds time, never bytes: counters are the inner
        // channel's counters, bit for bit.
        assert_eq!(sa.bytes_sent(), sa.get_ref().bytes_sent());
        assert_eq!(sa.bytes_received(), sa.get_ref().bytes_received());
        assert_eq!(sb.bytes_sent(), sb.get_ref().bytes_sent());
        assert_eq!(sb.bytes_received(), sb.get_ref().bytes_received());
        assert_eq!(sa.bytes_sent(), 300 + 8); // payload + one u64
        assert_eq!(sb.bytes_sent(), 8 + 1); // length prefix + packed bits
        assert_eq!(sa.bytes_sent(), sb.bytes_received());
        assert_eq!(sb.bytes_sent(), sa.bytes_received());
    }

    #[test]
    fn latency_is_paid_per_turnaround() {
        let (a, b) = mem_pair();
        let model = NetModel {
            latency: Duration::from_millis(5),
            bits_per_second: None,
        };
        let mut sa = SimChannel::new(a, model);
        let mut sb = SimChannel::new(b, model);
        sb.send(b"xy").unwrap();
        let start = Instant::now();
        // Turnaround receive pays latency once; the follow-up chunk of the
        // same inbound burst does not.
        assert_eq!(sa.recv(1).unwrap(), b"x");
        assert_eq!(sa.recv(1).unwrap(), b"y");
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(5), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(50), "{elapsed:?}");
        assert_eq!(sa.turnarounds(), 1, "one latency charge, one count");
        assert_eq!(sb.turnarounds(), 0, "the sender never turned around");
    }

    #[test]
    fn many_small_sends_one_direction_pay_no_fake_round_trips() {
        // Regression for the chunked table stream: 200 one-way sends must
        // not fabricate 200 WAN round trips. The receiver pays exactly one
        // turnaround latency for the whole burst (its own first receive),
        // and the sender pays none at all.
        let (a, b) = mem_pair();
        let model = NetModel {
            latency: Duration::from_millis(25),
            bits_per_second: None,
        };
        let mut sa = SimChannel::new(a, model);
        let mut sb = SimChannel::new(b, model);
        let start = Instant::now();
        for _ in 0..200 {
            sa.send(&[7u8; 64]).unwrap();
        }
        assert!(
            start.elapsed() < Duration::from_millis(25),
            "sender must never pay latency: {:?}",
            start.elapsed()
        );
        let start = Instant::now();
        for _ in 0..200 {
            assert_eq!(sb.recv(64).unwrap(), vec![7u8; 64]);
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(25), "{elapsed:?}");
        assert!(
            elapsed < Duration::from_millis(250),
            "one latency for the burst, not one per chunk: {elapsed:?}"
        );
        assert_eq!(sb.turnarounds(), 1, "whole burst = one turnaround");
        assert_eq!(sa.turnarounds(), 0);
    }

    #[test]
    fn bandwidth_paces_large_sends() {
        let (a, _b) = mem_pair();
        // 1 Mbit/s: 12_500 bytes = 100 ms of serialization, charged to the
        // link horizon and collected at flush.
        let model = NetModel {
            latency: Duration::ZERO,
            bits_per_second: Some(1_000_000),
        };
        let mut sa = SimChannel::new(a, model);
        let start = Instant::now();
        sa.send(&vec![0u8; 12_500]).unwrap();
        sa.flush().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(95));
    }

    #[test]
    fn compute_between_sends_overlaps_serialization() {
        // The streaming pipeline's core effect: work done between a send
        // and the next blocking point hides under the link's draining. 100
        // ms of serialization + 60 ms of "compute" must cost ~100 ms, not
        // 160 ms.
        let (a, _b) = mem_pair();
        let model = NetModel {
            latency: Duration::ZERO,
            bits_per_second: Some(1_000_000),
        };
        let mut sa = SimChannel::new(a, model);
        let start = Instant::now();
        sa.send(&vec![0u8; 12_500]).unwrap(); // 100 ms horizon
        std::thread::sleep(Duration::from_millis(60)); // stand-in compute
        sa.flush().unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(95), "{elapsed:?}");
        assert!(
            elapsed < Duration::from_millis(150),
            "compute must overlap serialization, not add to it: {elapsed:?}"
        );
    }

    #[test]
    fn turnaround_recv_waits_for_own_serialization_first() {
        // A receive that answers our own burst cannot observe the reply
        // before our bytes even finished serializing.
        let (a, mut b) = mem_pair();
        let model = NetModel {
            latency: Duration::from_millis(10),
            bits_per_second: Some(1_000_000),
        };
        let mut sa = SimChannel::new(a, model);
        b.send(b"r").unwrap(); // reply already queued
        let start = Instant::now();
        sa.send(&vec![0u8; 12_500]).unwrap(); // 100 ms horizon
        assert_eq!(sa.recv(1).unwrap(), b"r");
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(105),
            "serialization + latency precede the reply: {elapsed:?}"
        );
    }

    #[test]
    fn ideal_model_adds_no_delay_on_ping_pong() {
        let (a, b) = mem_pair();
        let mut sa = SimChannel::new(a, NetModel::ideal());
        let mut sb = SimChannel::new(b, NetModel::ideal());
        for _ in 0..100 {
            sa.send(b"p").unwrap();
            assert_eq!(sb.recv(1).unwrap(), b"p");
            sb.send(b"q").unwrap();
            assert_eq!(sa.recv(1).unwrap(), b"q");
        }
    }
}
