//! Length-prefixed message framing over any byte [`Channel`].
//!
//! The raw protocol channels are pure byte streams: the receiver always
//! knows exactly how many bytes to expect. Message-oriented layers
//! (handshakes, RPC-style control traffic, future multi-client routing)
//! instead want self-describing frames. [`FramedChannel`] provides both
//! views over one transport: `send_frame`/`recv_frame` move whole
//! messages, while the [`Channel`] impl re-exposes a byte stream whose
//! sends each travel as one frame and whose receives drain frames through
//! an inbox (so a single frame may satisfy several partial reads, and one
//! read may span several frames).

use std::collections::VecDeque;

use crate::channel::{Channel, ChannelError};

/// Upper bound on a frame's payload; a header above this is corrupt
/// framing (e.g. a raw-stream peer), not a real message.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// A framing wrapper over any byte channel.
///
/// Byte counters delegate to the wrapped channel and therefore include the
/// 4-byte frame headers — they report what actually crossed the wire.
#[derive(Debug)]
pub struct FramedChannel<C: Channel> {
    inner: C,
    inbox: VecDeque<u8>,
}

impl<C: Channel> FramedChannel<C> {
    /// Wraps `inner`; both endpoints of a connection must agree to frame.
    pub fn new(inner: C) -> FramedChannel<C> {
        FramedChannel {
            inner,
            inbox: VecDeque::new(),
        }
    }

    /// Sends one length-prefixed frame (empty payloads are legal).
    ///
    /// # Errors
    ///
    /// Fails if the payload exceeds [`MAX_FRAME_LEN`] or the transport
    /// fails.
    pub fn send_frame(&mut self, payload: &[u8]) -> Result<(), ChannelError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_LEN)
            .ok_or_else(|| {
                ChannelError::msg(format!(
                    "sending frame: payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                    payload.len()
                ))
            })?;
        self.inner.send(&len.to_le_bytes())?;
        self.inner.send(payload)
    }

    /// Receives one whole frame.
    ///
    /// # Errors
    ///
    /// Fails on transport failure, a corrupt (oversized) header, or if a
    /// partially drained byte-stream read left bytes in the inbox — the
    /// next header would then be read past buffered data, silently
    /// reordering the stream.
    pub fn recv_frame(&mut self) -> Result<Vec<u8>, ChannelError> {
        if !self.inbox.is_empty() {
            return Err(ChannelError::msg(format!(
                "receiving frame: {} byte-stream bytes still buffered from a partial \
                 recv(); draining frames here would reorder the stream",
                self.inbox.len()
            )));
        }
        self.recv_frame_raw()
    }

    /// Reads the next frame off the wire, ignoring the inbox (the
    /// byte-stream `recv` appends to the inbox, so ordering holds there).
    fn recv_frame_raw(&mut self) -> Result<Vec<u8>, ChannelError> {
        let header = self.inner.recv(4)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        if len > MAX_FRAME_LEN {
            return Err(ChannelError::msg(format!(
                "receiving frame: header claims {len} bytes (cap {MAX_FRAME_LEN}) — \
                 corrupt framing or an unframed peer"
            )));
        }
        self.inner.recv(len as usize)
    }

    /// Shared access to the wrapped channel (e.g. for its counters).
    pub fn get_ref(&self) -> &C {
        &self.inner
    }

    /// Unwraps, discarding any partially drained inbox frame.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Channel> Channel for FramedChannel<C> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        self.send_frame(data)
    }

    fn recv(&mut self, n: usize) -> Result<Vec<u8>, ChannelError> {
        while self.inbox.len() < n {
            let frame = self.recv_frame_raw()?;
            self.inbox.extend(frame);
        }
        Ok(self.inbox.drain(..n).collect())
    }

    fn flush(&mut self) -> Result<(), ChannelError> {
        self.inner.flush()
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use crate::channel::mem_pair;

    use super::*;

    #[test]
    fn whole_frames_roundtrip() {
        let (a, b) = mem_pair();
        let (mut fa, mut fb) = (FramedChannel::new(a), FramedChannel::new(b));
        fa.send_frame(b"alpha").unwrap();
        fa.send_frame(b"").unwrap();
        fa.send_frame(&[7u8; 1000]).unwrap();
        assert_eq!(fb.recv_frame().unwrap(), b"alpha");
        assert_eq!(fb.recv_frame().unwrap(), b"");
        assert_eq!(fb.recv_frame().unwrap(), vec![7u8; 1000]);
        // Counters include the empty payload and the three 4-byte headers.
        assert_eq!(fa.bytes_sent(), 5 + 1000 + 3 * 4);
    }

    #[test]
    fn recv_frame_refuses_to_skip_buffered_stream_bytes() {
        let (a, b) = mem_pair();
        let (mut fa, mut fb) = (FramedChannel::new(a), FramedChannel::new(b));
        fa.send_frame(b"abcd").unwrap();
        fa.send_frame(b"efgh").unwrap();
        assert_eq!(fb.recv(2).unwrap(), b"ab"); // 'cd' now sits in the inbox
        let err = fb.recv_frame().unwrap_err();
        assert!(err.to_string().contains("reorder"), "{err}");
        // The byte-stream view still delivers everything in order.
        assert_eq!(fb.recv(6).unwrap(), b"cdefgh");
    }

    #[test]
    fn oversized_header_is_a_diagnosable_error() {
        let (mut a, b) = mem_pair();
        let mut fb = FramedChannel::new(b);
        // A peer that doesn't frame: raw bytes read as an absurd length.
        a.send(&u32::MAX.to_le_bytes()).unwrap();
        let err = fb.recv_frame().unwrap_err();
        assert!(err.to_string().contains("corrupt framing"), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn framing_roundtrips_arbitrary_messages(
            sizes in proptest::collection::vec(0usize..600, 1..12),
            chunk in 1usize..97,
            seed in any::<u64>(),
        ) {
            // Messages of arbitrary sizes (incl. 0) sent as frames, read
            // back through the byte-stream view in fixed `chunk`-sized
            // partial reads that deliberately straddle frame boundaries.
            let (a, b) = mem_pair();
            let (mut fa, mut fb) = (FramedChannel::new(a), FramedChannel::new(b));
            let mut want: Vec<u8> = Vec::new();
            let mut x = seed | 1;
            for (i, &n) in sizes.iter().enumerate() {
                let payload: Vec<u8> = (0..n)
                    .map(|j| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(j as u64);
                        (x >> 33) as u8
                    })
                    .collect();
                want.extend_from_slice(&payload);
                if i % 2 == 0 {
                    fa.send_frame(&payload).unwrap();
                } else {
                    // The Channel view frames identically.
                    fa.send(&payload).unwrap();
                }
            }
            let mut got: Vec<u8> = Vec::new();
            while got.len() < want.len() {
                let n = chunk.min(want.len() - got.len());
                got.extend(fb.recv(n).unwrap());
            }
            prop_assert_eq!(&got, &want);
            // Wire accounting: payload plus one 4-byte header per frame.
            let wire = want.len() as u64 + 4 * sizes.len() as u64;
            prop_assert_eq!(fa.bytes_sent(), wire);
            prop_assert_eq!(fb.bytes_received(), wire);
        }
    }
}
