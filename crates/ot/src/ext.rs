//! IKNP OT extension (Ishai–Kilian–Nissim–Petrank, CRYPTO'03).
//!
//! A one-time setup of 128 *base* OTs in the reversed direction seeds PRG
//! pairs; afterwards each batch of `m` chosen-message OTs costs only
//! `m × 128` bits of PRG output, one `m × 128` bit matrix transmission and
//! fixed-key hashing — this is what makes delivering millions of weight-bit
//! wire labels practical (§3.1).

use deepsecure_bigint::DhGroup;
use deepsecure_crypto::{Block, FixedKeyHash, Prg};
use rand::Rng;
use workpool::ThreadPool;

use crate::channel::Channel;
use crate::{base, OtError};

/// Security parameter: number of base OTs / matrix columns.
const KAPPA: usize = 128;

/// The offline half of [`ExtSender::setup`]: the random choice vector `s`
/// and the base-OT receiver keypairs (all the modular exponentiations that
/// don't need the peer), generated ahead of any connection.
///
/// A precompute pool can stockpile these so the interactive remainder of
/// the setup — three batched base-OT flights — is all that stays on a new
/// connection's critical path. Consumed by [`ExtSender::setup_with`]; one
/// precompute never serves two sessions.
pub struct SenderPrecomp {
    s: Vec<bool>,
    keys: base::ReceiverKeys,
}

impl std::fmt::Debug for SenderPrecomp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SenderPrecomp")
            .field("group", &self.keys.group().name())
            .finish_non_exhaustive()
    }
}

impl SenderPrecomp {
    /// Generates the offline material: `s` plus [`KAPPA`] keypairs (one
    /// modexp each in `group`).
    pub fn generate<R: Rng + ?Sized>(group: &DhGroup, rng: &mut R) -> SenderPrecomp {
        SenderPrecomp::generate_with(group, rng, ThreadPool::sequential())
    }

    /// [`SenderPrecomp::generate`] with the 128 keypair modexps fanned out
    /// across `pool`. RNG order matches the sequential path, so the
    /// material is identical for the same seed.
    pub fn generate_with<R: Rng + ?Sized>(
        group: &DhGroup,
        rng: &mut R,
        pool: ThreadPool,
    ) -> SenderPrecomp {
        SenderPrecomp {
            s: (0..KAPPA).map(|_| rng.gen()).collect(),
            keys: base::ReceiverKeys::generate_with(group, KAPPA, rng, pool),
        }
    }
}

/// The extension sender (holds message pairs).
pub struct ExtSender {
    s: Vec<bool>,
    seeds: Vec<Prg>,
    hash: FixedKeyHash,
    tweak: u64,
    in_flight: bool,
}

impl std::fmt::Debug for ExtSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtSender")
            .field("tweak", &self.tweak)
            .finish_non_exhaustive()
    }
}

/// The extension receiver (holds choice bits).
pub struct ExtReceiver {
    seed_pairs: Vec<(Prg, Prg)>,
    hash: FixedKeyHash,
    tweak: u64,
    in_flight: bool,
}

impl std::fmt::Debug for ExtReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtReceiver")
            .field("tweak", &self.tweak)
            .finish_non_exhaustive()
    }
}

impl ExtSender {
    /// One-time setup: runs 128 base OTs *as receiver* with random choice
    /// vector `s`.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        group: &DhGroup,
        rng: &mut R,
    ) -> Result<ExtSender, OtError> {
        ExtSender::setup_with(channel, SenderPrecomp::generate(group, rng))
    }

    /// The online half of setup: completes the 128 base OTs with
    /// [`SenderPrecomp`] material generated ahead of time, leaving only
    /// the three batched flights (and half the modexps) on the wire path.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup_with<C: Channel>(
        channel: &mut C,
        pre: SenderPrecomp,
    ) -> Result<ExtSender, OtError> {
        ExtSender::setup_with_pool(channel, pre, ThreadPool::sequential())
    }

    /// [`ExtSender::setup_with`] with the online base-OT modexps (the
    /// chosen-branch decryptions) fanned out across `pool`. Wire-identical
    /// to the sequential path.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup_with_pool<C: Channel>(
        channel: &mut C,
        pre: SenderPrecomp,
        pool: ThreadPool,
    ) -> Result<ExtSender, OtError> {
        let SenderPrecomp { s, keys } = pre;
        let seeds_blocks = base::receive_with_pool(channel, &s, keys, pool)?;
        Ok(ExtSender {
            s,
            seeds: seeds_blocks.into_iter().map(Prg::from_seed).collect(),
            hash: FixedKeyHash::new(),
            tweak: 0,
            in_flight: false,
        })
    }

    /// `true` while a [`ExtSender::send`] batch is mid-transfer: the
    /// internal PRG streams and tweak have advanced but the peer may not
    /// have consumed the matching flight. An in-flight sender must not be
    /// reused on a new connection (resumption would desynchronise the
    /// correlation); a sender that is *not* in flight is safe to carry
    /// across a reconnect.
    #[must_use]
    pub fn is_in_flight(&self) -> bool {
        self.in_flight
    }

    /// Sends `pairs.len()` chosen-message OTs.
    ///
    /// # Errors
    ///
    /// Fails on channel breakdown.
    pub fn send<C: Channel>(
        &mut self,
        channel: &mut C,
        pairs: &[(Block, Block)],
    ) -> Result<(), OtError> {
        let m = pairs.len();
        if m == 0 {
            return Ok(());
        }
        self.in_flight = true;
        // Column i of Q: q_i = G(k_{s_i}) ⊕ s_i · u_i  (u from receiver).
        let mut q_rows = vec![Block::ZERO; m];
        let bytes_per_col = m.div_ceil(8);
        for (i, seed) in self.seeds.iter_mut().enumerate() {
            let mut col = vec![0u8; bytes_per_col];
            seed.fill(&mut col);
            let u = channel.recv(bytes_per_col)?;
            for (j, q) in q_rows.iter_mut().enumerate() {
                let mut bit = (col[j / 8] >> (j % 8)) & 1;
                if self.s[i] {
                    bit ^= (u[j / 8] >> (j % 8)) & 1;
                }
                if bit == 1 {
                    *q ^= Block::from(1u128 << i);
                }
            }
        }
        let s_block = {
            let mut b = Block::ZERO;
            for (i, &bit) in self.s.iter().enumerate() {
                if bit {
                    b ^= Block::from(1u128 << i);
                }
            }
            b
        };
        let mut cts = Vec::with_capacity(2 * m);
        for (j, (x0, x1)) in pairs.iter().enumerate() {
            let t = self.tweak + j as u64;
            cts.push(*x0 ^ self.hash.hash(q_rows[j], t));
            cts.push(*x1 ^ self.hash.hash(q_rows[j] ^ s_block, t));
        }
        self.tweak += m as u64;
        channel.send_blocks(&cts)?;
        self.in_flight = false;
        Ok(())
    }
}

impl ExtReceiver {
    /// One-time setup: runs 128 base OTs *as sender* with random seed
    /// pairs.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        group: &DhGroup,
        rng: &mut R,
    ) -> Result<ExtReceiver, OtError> {
        ExtReceiver::setup_with_pool(channel, group, rng, ThreadPool::sequential())
    }

    /// [`ExtReceiver::setup`] with the base-OT sender's modexps (four per
    /// transfer) fanned out across `pool`. Wire-identical to the
    /// sequential path for the same seed.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup_with_pool<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        group: &DhGroup,
        rng: &mut R,
        pool: ThreadPool,
    ) -> Result<ExtReceiver, OtError> {
        let pairs: Vec<(Block, Block)> = (0..KAPPA)
            .map(|_| (Block::random(rng), Block::random(rng)))
            .collect();
        base::send_with_pool(channel, group, &pairs, rng, pool)?;
        Ok(ExtReceiver {
            seed_pairs: pairs
                .into_iter()
                .map(|(k0, k1)| (Prg::from_seed(k0), Prg::from_seed(k1)))
                .collect(),
            hash: FixedKeyHash::new(),
            tweak: 0,
            in_flight: false,
        })
    }

    /// `true` while a [`ExtReceiver::receive`] batch is mid-transfer. See
    /// [`ExtSender::is_in_flight`] — an in-flight receiver has advanced
    /// its PRG streams past the peer's view and must not be resumed.
    #[must_use]
    pub fn is_in_flight(&self) -> bool {
        self.in_flight
    }

    /// Receives `choices.len()` OTs; returns the chosen blocks.
    ///
    /// # Errors
    ///
    /// Fails on channel breakdown.
    pub fn receive<C: Channel>(
        &mut self,
        channel: &mut C,
        choices: &[bool],
    ) -> Result<Vec<Block>, OtError> {
        let m = choices.len();
        if m == 0 {
            return Ok(Vec::new());
        }
        self.in_flight = true;
        let bytes_per_col = m.div_ceil(8);
        let mut r_packed = vec![0u8; bytes_per_col];
        for (j, &c) in choices.iter().enumerate() {
            r_packed[j / 8] |= u8::from(c) << (j % 8);
        }
        let mut t_rows = vec![Block::ZERO; m];
        for (i, (k0, k1)) in self.seed_pairs.iter_mut().enumerate() {
            let mut t_col = vec![0u8; bytes_per_col];
            k0.fill(&mut t_col);
            let mut g1 = vec![0u8; bytes_per_col];
            k1.fill(&mut g1);
            // u_i = G(k0_i) ⊕ G(k1_i) ⊕ r
            let u: Vec<u8> = t_col
                .iter()
                .zip(&g1)
                .zip(&r_packed)
                .map(|((a, b), r)| a ^ b ^ r)
                .collect();
            channel.send(&u)?;
            for (j, t) in t_rows.iter_mut().enumerate() {
                if (t_col[j / 8] >> (j % 8)) & 1 == 1 {
                    *t ^= Block::from(1u128 << i);
                }
            }
        }
        let cts = channel.recv_blocks(2 * m)?;
        let mut out = Vec::with_capacity(m);
        for (j, &c) in choices.iter().enumerate() {
            let t = self.tweak + j as u64;
            let ct = cts[2 * j + usize::from(c)];
            out.push(ct ^ self.hash.hash(t_rows[j], t));
        }
        self.tweak += m as u64;
        self.in_flight = false;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::channel::mem_pair;

    use super::*;

    fn run_ext(choices: Vec<bool>, batches: usize) {
        let group = DhGroup::modp_768();
        let (mut ca, mut cb) = mem_pair();
        let g2 = group.clone();
        let n = choices.len();
        let pairs: Vec<(Block, Block)> = (0..n as u128)
            .map(|i| (Block::from(i * 2 + 10_000), Block::from(i * 2 + 10_001)))
            .collect();
        let pairs2 = pairs.clone();
        let sender = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(55);
            let mut s = ExtSender::setup(&mut ca, &g2, &mut rng).unwrap();
            for _ in 0..batches {
                s.send(&mut ca, &pairs2).unwrap();
            }
        });
        let mut rng = StdRng::seed_from_u64(66);
        let mut r = ExtReceiver::setup(&mut cb, &group, &mut rng).unwrap();
        for _ in 0..batches {
            let got = r.receive(&mut cb, &choices).unwrap();
            for ((pair, &c), msg) in pairs.iter().zip(&choices).zip(&got) {
                assert_eq!(*msg, if c { pair.1 } else { pair.0 });
            }
        }
        sender.join().unwrap();
    }

    #[test]
    fn correctness_small_batch() {
        run_ext(vec![true, false, true, true, false], 1);
    }

    #[test]
    fn correctness_unaligned_sizes() {
        // Exercise the bit-packing edges: 1, 7, 8, 9, 129 choices.
        for n in [1usize, 7, 8, 9, 129] {
            let choices: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            run_ext(choices, 1);
        }
    }

    #[test]
    fn multiple_batches_reuse_setup() {
        run_ext(vec![false, true, false], 3);
    }

    #[test]
    fn precomputed_sender_setup_is_equivalent() {
        // Offline-generated SenderPrecomp must yield a working extension
        // identical in behaviour to the inline-randomness setup.
        let group = DhGroup::modp_768();
        let (mut ca, mut cb) = mem_pair();
        let pre = {
            let mut rng = StdRng::seed_from_u64(123);
            SenderPrecomp::generate(&group, &mut rng)
        };
        let pairs: Vec<(Block, Block)> = (0..9u128)
            .map(|i| (Block::from(i), Block::from(i + 50)))
            .collect();
        let pairs2 = pairs.clone();
        let sender = std::thread::spawn(move || {
            let mut s = ExtSender::setup_with(&mut ca, pre).unwrap();
            s.send(&mut ca, &pairs2).unwrap();
        });
        let g2 = group.clone();
        let mut rng = StdRng::seed_from_u64(124);
        let mut r = ExtReceiver::setup(&mut cb, &g2, &mut rng).unwrap();
        let choices: Vec<bool> = (0..9).map(|i| i % 2 == 1).collect();
        let got = r.receive(&mut cb, &choices).unwrap();
        sender.join().unwrap();
        for ((pair, &c), msg) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*msg, if c { pair.1 } else { pair.0 });
        }
    }

    #[test]
    fn in_flight_tracks_batch_boundaries() {
        let group = DhGroup::modp_768();
        let (mut ca, mut cb) = mem_pair();
        let g2 = group.clone();
        let sender = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut s = ExtSender::setup(&mut ca, &g2, &mut rng).unwrap();
            assert!(!s.is_in_flight());
            s.send(&mut ca, &[(Block::ZERO, Block::ONES); 4]).unwrap();
            assert!(!s.is_in_flight(), "completed batch must clear in_flight");
            s.send(&mut ca, &[]).unwrap();
            assert!(!s.is_in_flight(), "empty batch never enters flight");
        });
        let mut rng = StdRng::seed_from_u64(8);
        let mut r = ExtReceiver::setup(&mut cb, &group, &mut rng).unwrap();
        assert!(!r.is_in_flight());
        let _ = r.receive(&mut cb, &[true; 4]).unwrap();
        assert!(!r.is_in_flight(), "completed batch must clear in_flight");
        let _ = r.receive(&mut cb, &[]).unwrap();
        assert!(!r.is_in_flight(), "empty batch never enters flight");
        sender.join().unwrap();
        // The sender thread (and its channel end) are gone: a batch torn
        // mid-transfer must leave the receiver marked in flight, so a
        // reconnect knows the correlation state cannot be resumed.
        let err = r.receive(&mut cb, &[true; 4]);
        assert!(err.is_err());
        assert!(r.is_in_flight(), "torn batch must stay in flight");
    }

    #[test]
    fn larger_batch() {
        let choices: Vec<bool> = (0..1000).map(|i| (i * 7) % 5 < 2).collect();
        run_ext(choices, 1);
    }

    #[test]
    fn extension_is_cheap_per_ot() {
        // After setup, per-OT communication should be ~ 128 bits (matrix)
        // + 256 bits (two ciphertexts), far below a public-key transfer.
        let group = DhGroup::modp_768();
        let (mut ca, mut cb) = mem_pair();
        let g2 = group.clone();
        let n = 4096usize;
        let sender = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(5);
            let mut s = ExtSender::setup(&mut ca, &g2, &mut rng).unwrap();
            let pairs = vec![(Block::ZERO, Block::ONES); 4096];
            s.send(&mut ca, &pairs).unwrap();
            ca.bytes_sent()
        });
        let mut rng = StdRng::seed_from_u64(6);
        let mut r = ExtReceiver::setup(&mut cb, &group, &mut rng).unwrap();
        let before = cb.bytes_sent();
        let _ = r.receive(&mut cb, &vec![false; n]).unwrap();
        let receiver_batch_bytes = cb.bytes_sent() - before;
        let _sender_total = sender.join().unwrap();
        // Receiver sends the m×128 matrix: 4096 * 16 bytes.
        assert_eq!(receiver_batch_bytes, (n / 8 * KAPPA) as u64);
    }
}

#[cfg(test)]
mod security_tests {
    use deepsecure_bigint::DhGroup;
    use deepsecure_crypto::Block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::channel::{mem_pair, Channel};
    use crate::ext::{ExtReceiver, ExtSender};

    #[test]
    fn receiver_never_obtains_the_other_message() {
        // The unchosen message's mask is keyed by q_j ⊕ s which the
        // receiver cannot compute; check that the receiver's outputs never
        // coincide with the unchosen plaintext.
        let group = DhGroup::modp_768();
        let (mut ca, mut cb) = mem_pair();
        let g2 = group.clone();
        let n = 64usize;
        let pairs: Vec<(Block, Block)> = (0..n as u128)
            .map(|i| (Block::from(0xAAAA_0000 + i), Block::from(0xBBBB_0000 + i)))
            .collect();
        let pairs2 = pairs.clone();
        let sender = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut s = ExtSender::setup(&mut ca, &g2, &mut rng).unwrap();
            s.send(&mut ca, &pairs2).unwrap();
        });
        let mut rng = StdRng::seed_from_u64(12);
        let mut r = ExtReceiver::setup(&mut cb, &group, &mut rng).unwrap();
        let choices: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let got = r.receive(&mut cb, &choices).unwrap();
        sender.join().unwrap();
        for ((pair, &c), msg) in pairs.iter().zip(&choices).zip(&got) {
            let unchosen = if c { pair.0 } else { pair.1 };
            assert_ne!(*msg, unchosen, "receiver obtained the unchosen message");
        }
    }

    #[test]
    fn different_receivers_same_sender_stream_diverge() {
        // The u-matrix the receiver sends masks its choices with fresh PRG
        // output: two receivers with identical choices produce different
        // transcripts (no choice leakage through determinism).
        let run = |seed: u64| -> u64 {
            let group = DhGroup::modp_768();
            let (mut ca, mut cb) = mem_pair();
            let g2 = group.clone();
            let sender = std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100);
                let mut s = ExtSender::setup(&mut ca, &g2, &mut rng).unwrap();
                s.send(&mut ca, &[(Block::ZERO, Block::ONES); 8]).unwrap();
            });
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = ExtReceiver::setup(&mut cb, &group, &mut rng).unwrap();
            let _ = r.receive(&mut cb, &[true; 8]).unwrap();
            sender.join().unwrap();
            cb.bytes_sent()
        };
        // Transcript *sizes* equal (no length leak)…
        assert_eq!(run(201), run(202));
    }
}
