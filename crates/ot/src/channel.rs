//! Byte-counted duplex channels between protocol parties.

use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};

use deepsecure_crypto::Block;

/// Error raised when a channel operation fails mid-protocol.
///
/// Carries a human-readable context string (what the channel was doing and
/// how far it got) plus, where one exists, the underlying [`std::io::Error`]
/// — so a two-process failure is diagnosable from a single CI log line
/// instead of an opaque "channel closed".
#[derive(Debug)]
pub struct ChannelError {
    context: String,
    source: Option<std::io::Error>,
}

impl ChannelError {
    /// A failure with no underlying I/O error (peer hung up, corrupt frame).
    pub fn msg(context: impl Into<String>) -> ChannelError {
        ChannelError {
            context: context.into(),
            source: None,
        }
    }

    /// A failure caused by an underlying I/O error.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> ChannelError {
        ChannelError {
            context: context.into(),
            source: Some(source),
        }
    }

    /// What the channel was doing when it failed.
    pub fn context(&self) -> &str {
        &self.context
    }
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            Some(e) => write!(f, "channel failure while {}: {e}", self.context),
            None => write!(f, "channel failure while {}", self.context),
        }
    }
}

impl std::error::Error for ChannelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_ref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// A reliable, ordered, byte-counted duplex channel.
///
/// The byte counters are load-bearing: the "Comm." columns of the paper's
/// Tables 4–6 are *measured* through them whenever a circuit is actually
/// executed.
pub trait Channel {
    /// Sends all of `data`.
    ///
    /// # Errors
    ///
    /// Fails if the peer has disconnected.
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError>;

    /// Receives exactly `n` bytes (blocking).
    ///
    /// Implementations that buffer writes (e.g. [`crate::TcpChannel`]) must
    /// flush any pending output before blocking here, so that strictly
    /// alternating protocols cannot deadlock on buffered data.
    ///
    /// # Errors
    ///
    /// Fails if the peer disconnects before `n` bytes arrive.
    fn recv(&mut self, n: usize) -> Result<Vec<u8>, ChannelError>;

    /// Pushes any buffered output to the peer.
    ///
    /// Unbuffered channels need not override the default no-op. Callers
    /// must flush after the final send of a session: mid-protocol sends are
    /// flushed implicitly by the next `recv`, but a trailing send would
    /// otherwise sit in the buffer forever.
    ///
    /// # Errors
    ///
    /// Fails if the peer has disconnected.
    fn flush(&mut self) -> Result<(), ChannelError> {
        Ok(())
    }

    /// Total bytes sent so far.
    fn bytes_sent(&self) -> u64;

    /// Total bytes received so far.
    fn bytes_received(&self) -> u64;

    /// Sends one 128-bit block.
    fn send_block(&mut self, b: Block) -> Result<(), ChannelError> {
        self.send(&b.to_bytes())
    }

    /// Receives one 128-bit block.
    fn recv_block(&mut self) -> Result<Block, ChannelError> {
        let bytes = self.recv(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(&bytes);
        Ok(Block::from_bytes(arr))
    }

    /// Sends a slice of blocks back-to-back.
    fn send_blocks(&mut self, blocks: &[Block]) -> Result<(), ChannelError> {
        let mut buf = Vec::with_capacity(blocks.len() * 16);
        for b in blocks {
            buf.extend_from_slice(&b.to_bytes());
        }
        self.send(&buf)
    }

    /// Receives `n` blocks.
    fn recv_blocks(&mut self, n: usize) -> Result<Vec<Block>, ChannelError> {
        let bytes = self.recv(n * 16)?;
        Ok(bytes
            .chunks_exact(16)
            .map(|c| {
                let mut arr = [0u8; 16];
                arr.copy_from_slice(c);
                Block::from_bytes(arr)
            })
            .collect())
    }

    /// Sends a `u64` (little endian).
    fn send_u64(&mut self, v: u64) -> Result<(), ChannelError> {
        self.send(&v.to_le_bytes())
    }

    /// Receives a `u64`.
    fn recv_u64(&mut self) -> Result<u64, ChannelError> {
        let bytes = self.recv(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Sends a length-prefixed byte string.
    fn send_bytes(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        self.send_u64(data.len() as u64)?;
        self.send(data)
    }

    /// Receives a length-prefixed byte string.
    fn recv_bytes(&mut self) -> Result<Vec<u8>, ChannelError> {
        let n = self.recv_u64()? as usize;
        self.recv(n)
    }

    /// Sends a packed bit vector (length-prefixed, LSB-first packing).
    fn send_bits(&mut self, bits: &[bool]) -> Result<(), ChannelError> {
        let mut packed = vec![0u8; bits.len().div_ceil(8)];
        for (i, &bit) in bits.iter().enumerate() {
            packed[i / 8] |= u8::from(bit) << (i % 8);
        }
        self.send_u64(bits.len() as u64)?;
        self.send(&packed)
    }

    /// Receives a packed bit vector.
    fn recv_bits(&mut self) -> Result<Vec<bool>, ChannelError> {
        let n = self.recv_u64()? as usize;
        let packed = self.recv(n.div_ceil(8))?;
        Ok((0..n)
            .map(|i| (packed[i / 8] >> (i % 8)) & 1 == 1)
            .collect())
    }
}

/// An in-memory channel endpoint built over `std::sync::mpsc` queues.
pub struct MemChannel {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    inbox: VecDeque<u8>,
    sent: u64,
    received: u64,
}

impl fmt::Debug for MemChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemChannel")
            .field("sent", &self.sent)
            .field("received", &self.received)
            .finish_non_exhaustive()
    }
}

/// Creates a connected pair of in-memory channel endpoints.
pub fn mem_pair() -> (MemChannel, MemChannel) {
    let (tx_a, rx_b) = channel();
    let (tx_b, rx_a) = channel();
    (
        MemChannel {
            tx: tx_a,
            rx: rx_a,
            inbox: VecDeque::new(),
            sent: 0,
            received: 0,
        },
        MemChannel {
            tx: tx_b,
            rx: rx_b,
            inbox: VecDeque::new(),
            sent: 0,
            received: 0,
        },
    )
}

impl Channel for MemChannel {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        self.sent += data.len() as u64;
        self.tx.send(data.to_vec()).map_err(|_| {
            ChannelError::msg(format!(
                "sending {} bytes over mem channel: peer disconnected",
                data.len()
            ))
        })
    }

    fn recv(&mut self, n: usize) -> Result<Vec<u8>, ChannelError> {
        while self.inbox.len() < n {
            let buffered = self.inbox.len();
            let chunk = self.rx.recv().map_err(|_| {
                ChannelError::msg(format!(
                    "receiving over mem channel: peer disconnected with \
                     {buffered} of {n} bytes buffered"
                ))
            })?;
            self.inbox.extend(chunk);
        }
        self.received += n as u64;
        Ok(self.inbox.drain(..n).collect())
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes_and_counters() {
        let (mut a, mut b) = mem_pair();
        a.send(b"hello").unwrap();
        a.send(b" world").unwrap();
        assert_eq!(b.recv(11).unwrap(), b"hello world");
        assert_eq!(a.bytes_sent(), 11);
        assert_eq!(b.bytes_received(), 11);
    }

    #[test]
    fn partial_reads() {
        let (mut a, mut b) = mem_pair();
        a.send(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(b.recv(2).unwrap(), vec![1, 2]);
        assert_eq!(b.recv(3).unwrap(), vec![3, 4, 5]);
    }

    #[test]
    fn blocks_and_u64() {
        let (mut a, mut b) = mem_pair();
        a.send_block(Block::from(42u128)).unwrap();
        a.send_u64(7).unwrap();
        a.send_blocks(&[Block::from(1u128), Block::from(2u128)])
            .unwrap();
        assert_eq!(b.recv_block().unwrap(), Block::from(42u128));
        assert_eq!(b.recv_u64().unwrap(), 7);
        assert_eq!(
            b.recv_blocks(2).unwrap(),
            vec![Block::from(1u128), Block::from(2u128)]
        );
    }

    #[test]
    fn bit_vectors() {
        let (mut a, mut b) = mem_pair();
        let bits = vec![true, false, true, true, false, false, true, false, true];
        a.send_bits(&bits).unwrap();
        assert_eq!(b.recv_bits().unwrap(), bits);
    }

    #[test]
    fn disconnect_is_an_error() {
        let (a, mut b) = mem_pair();
        drop(a);
        assert!(b.recv(1).is_err());
    }

    #[test]
    fn duplex() {
        let (mut a, mut b) = mem_pair();
        a.send(b"ping").unwrap();
        b.send(b"pong").unwrap();
        assert_eq!(b.recv(4).unwrap(), b"ping");
        assert_eq!(a.recv(4).unwrap(), b"pong");
    }
}
