//! Base 1-out-of-2 oblivious transfer (Bellare–Micali style) over a
//! Diffie-Hellman group, secure against honest-but-curious parties.
//!
//! Protocol (for each transfer, batched):
//!
//! 1. Sender samples `c` with unknown discrete log and publishes `C = g^c`.
//! 2. Receiver with choice bit `σ` samples `k`, sets `PK_σ = g^k` and
//!    `PK_{1-σ} = C / g^k`, and sends `PK_0` (so the sender can derive
//!    `PK_1 = C / PK_0` itself).
//! 3. Sender ElGamal-encrypts `m_b` under `PK_b` with fresh randomness:
//!    sends `(g^{r_b}, H(PK_b^{r_b}) ⊕ m_b)` for `b ∈ {0, 1}`.
//! 4. Receiver decrypts only branch `σ`: `H((g^{r_σ})^k) = H(PK_σ^{r_σ})`.
//!
//! The receiver cannot know the discrete logs of both `PK_0` and `PK_1`
//! (they multiply to `C`), so it learns exactly one message; the sender
//! sees only `PK_0`, which is uniform either way.

use deepsecure_bigint::DhGroup;
use deepsecure_crypto::{Block, FixedKeyHash};
use rand::Rng;

use crate::channel::Channel;
use crate::OtError;

/// Runs the sender side for `pairs.len()` base OTs.
///
/// # Errors
///
/// Fails on channel breakdown or malformed group elements.
pub fn send<C: Channel, R: Rng + ?Sized>(
    channel: &mut C,
    group: &DhGroup,
    pairs: &[(Block, Block)],
    rng: &mut R,
) -> Result<(), OtError> {
    let hash = FixedKeyHash::new();
    let (_, big_c) = group.random_keypair(rng);
    channel.send(&group.element_to_bytes(&big_c))?;
    for (i, (m0, m1)) in pairs.iter().enumerate() {
        let pk0 = group.element_from_bytes(&channel.recv(group.element_len())?);
        if pk0.is_zero() || pk0 >= *group.prime() {
            return Err(OtError::Protocol(format!("public key {i} out of range")));
        }
        let pk1 = group.div(&big_c, &pk0);
        for (b, (pk, msg)) in [(0u64, (&pk0, m0)), (1, (&pk1, m1))] {
            let (r, gr) = group.random_keypair(rng);
            let shared = group.pow(pk, &r);
            let mask = hash.hash_bytes(&group.element_to_bytes(&shared), (i as u64) << 1 | b);
            channel.send(&group.element_to_bytes(&gr))?;
            channel.send_block(mask ^ *msg)?;
        }
    }
    Ok(())
}

/// Runs the receiver side; returns the chosen message per transfer.
///
/// # Errors
///
/// Fails on channel breakdown or malformed group elements.
pub fn receive<C: Channel, R: Rng + ?Sized>(
    channel: &mut C,
    group: &DhGroup,
    choices: &[bool],
    rng: &mut R,
) -> Result<Vec<Block>, OtError> {
    let hash = FixedKeyHash::new();
    let big_c = group.element_from_bytes(&channel.recv(group.element_len())?);
    let mut out = Vec::with_capacity(choices.len());
    for (i, &sigma) in choices.iter().enumerate() {
        let (k, gk) = group.random_keypair(rng);
        let pk_sigma = gk;
        let pk_other = group.div(&big_c, &pk_sigma);
        let pk0 = if sigma { &pk_other } else { &pk_sigma };
        channel.send(&group.element_to_bytes(pk0))?;
        // Receive both ciphertexts; decrypt only branch sigma.
        let mut chosen = None;
        for b in 0..2u64 {
            let gr = group.element_from_bytes(&channel.recv(group.element_len())?);
            let ct = channel.recv_block()?;
            if b == u64::from(sigma) {
                let shared = group.pow(&gr, &k);
                let mask = hash.hash_bytes(&group.element_to_bytes(&shared), (i as u64) << 1 | b);
                chosen = Some(ct ^ mask);
            }
        }
        out.push(chosen.expect("one branch always decrypts"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::channel::mem_pair;

    use super::*;

    fn run_base_ot(choices: Vec<bool>) -> (Vec<(Block, Block)>, Vec<Block>) {
        let group = DhGroup::modp_768();
        let pairs: Vec<(Block, Block)> = (0..choices.len() as u128)
            .map(|i| (Block::from(2 * i), Block::from(2 * i + 1)))
            .collect();
        let (mut ca, mut cb) = mem_pair();
        let g2 = group.clone();
        let pairs2 = pairs.clone();
        let sender = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100);
            send(&mut ca, &g2, &pairs2, &mut rng).unwrap();
        });
        let mut rng = StdRng::seed_from_u64(200);
        let got = receive(&mut cb, &group, &choices, &mut rng).unwrap();
        sender.join().unwrap();
        (pairs, got)
    }

    #[test]
    fn receiver_gets_chosen_messages() {
        let choices = vec![false, true, true, false, true];
        let (pairs, got) = run_base_ot(choices.clone());
        for ((pair, choice), msg) in pairs.iter().zip(&choices).zip(&got) {
            let want = if *choice { pair.1 } else { pair.0 };
            assert_eq!(*msg, want);
        }
    }

    #[test]
    fn all_zero_and_all_one_choices() {
        let (pairs, got) = run_base_ot(vec![false; 4]);
        assert!(pairs.iter().zip(&got).all(|(p, g)| p.0 == *g));
        let (pairs, got) = run_base_ot(vec![true; 4]);
        assert!(pairs.iter().zip(&got).all(|(p, g)| p.1 == *g));
    }

    #[test]
    fn transcript_is_randomized() {
        // Two runs with different sender randomness produce different
        // ciphertext streams even for equal inputs.
        let group = DhGroup::modp_768();
        let pairs = vec![(Block::from(1u128), Block::from(2u128))];
        let transcript = |seed: u64| {
            let (mut ca, mut cb) = mem_pair();
            let g2 = group.clone();
            let pairs2 = pairs.clone();
            let sender = std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                send(&mut ca, &g2, &pairs2, &mut rng).unwrap();
            });
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let _ = receive(&mut cb, &group, &[false], &mut rng).unwrap();
            sender.join().unwrap();
            cb.bytes_received()
        };
        // Same sizes (the protocol is oblivious in length)…
        assert_eq!(transcript(1), transcript(2));
    }
}
