//! Base 1-out-of-2 oblivious transfer (Bellare–Micali style) over a
//! Diffie-Hellman group, secure against honest-but-curious parties.
//!
//! Protocol (batched over all transfers — a **constant number of
//! flights**, independent of the transfer count):
//!
//! 1. Sender samples `c` with unknown discrete log and publishes `C = g^c`
//!    (flight 1).
//! 2. Receiver with choice bit `σ_i` samples `k_i`, sets `PK_σ = g^{k_i}`
//!    and `PK_{1-σ} = C / g^{k_i}`, and sends **every** `PK_0` in one
//!    flight (the sender derives each `PK_1 = C / PK_0` itself).
//! 3. Sender ElGamal-encrypts `m_b` under `PK_b` with fresh randomness and
//!    sends all `(g^{r_b}, H(PK_b^{r_b}) ⊕ m_b)` pairs in one flight.
//! 4. Receiver decrypts only branch `σ_i`:
//!    `H((g^{r_σ})^{k_i}) = H(PK_σ^{r_σ})`.
//!
//! The receiver cannot know the discrete logs of both `PK_0` and `PK_1`
//! (they multiply to `C`), so it learns exactly one message; the sender
//! sees only `PK_0`, which is uniform either way.
//!
//! Batching matters on real links: the earlier per-transfer ping-pong cost
//! one round trip per transfer — 128 IKNP base OTs over a 40 ms WAN spent
//! ≈ 10 s in pure latency. The batched protocol costs the same bytes in
//! three one-way flights (≈ 1.5 RTT) regardless of the transfer count.
//!
//! The receiver's keypairs `(k_i, g^{k_i})` are independent of both the
//! peer and the choice bits' messages, so [`ReceiverKeys::generate`] lets
//! callers hoist those modular exponentiations out of the connection's
//! critical path (the serving layer's precompute pool does exactly this).

use deepsecure_bigint::{DhGroup, Ubig};
use deepsecure_crypto::{Block, FixedKeyHash};
use rand::Rng;
use workpool::ThreadPool;

use crate::channel::Channel;
use crate::OtError;

/// Precomputed receiver-side keypairs `(k_i, g^{k_i})` for a batch of base
/// OTs — the expensive modular exponentiations, generated without the
/// peer. Bound to the group they were generated in.
pub struct ReceiverKeys {
    group: DhGroup,
    keys: Vec<(Ubig, Ubig)>,
}

impl std::fmt::Debug for ReceiverKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReceiverKeys")
            .field("group", &self.group.name())
            .field("len", &self.keys.len())
            .finish_non_exhaustive()
    }
}

impl ReceiverKeys {
    /// Generates keypairs for `n` transfers (one 768/1536/2048-bit modexp
    /// each) — runnable long before any connection exists.
    pub fn generate<R: Rng + ?Sized>(group: &DhGroup, n: usize, rng: &mut R) -> ReceiverKeys {
        ReceiverKeys::generate_with(group, n, rng, ThreadPool::sequential())
    }

    /// [`ReceiverKeys::generate`] with the modexps fanned out across
    /// `pool`. Exponents are drawn sequentially first, so the RNG stream —
    /// and therefore the generated keys — are identical to the sequential
    /// path's for the same seed.
    pub fn generate_with<R: Rng + ?Sized>(
        group: &DhGroup,
        n: usize,
        rng: &mut R,
        pool: ThreadPool,
    ) -> ReceiverKeys {
        let exponents: Vec<Ubig> = (0..n).map(|_| group.random_exponent(rng)).collect();
        let keys = pool.map(n, 1, |i| {
            let gx = group.pow(group.generator(), &exponents[i]);
            (exponents[i].clone(), gx)
        });
        ReceiverKeys {
            group: group.clone(),
            keys,
        }
    }

    /// Number of transfers these keys cover.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the key set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The group the keys live in.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }
}

/// Runs the sender side for `pairs.len()` base OTs (three flights total).
///
/// # Errors
///
/// Fails on channel breakdown or malformed group elements.
pub fn send<C: Channel, R: Rng + ?Sized>(
    channel: &mut C,
    group: &DhGroup,
    pairs: &[(Block, Block)],
    rng: &mut R,
) -> Result<(), OtError> {
    send_with_pool(channel, group, pairs, rng, ThreadPool::sequential())
}

/// [`send`] with the per-transfer modexps (two encryptions × two
/// exponentiations each, plus the `PK_1` inversion) fanned out across
/// `pool`. All randomness is drawn in the same order as the sequential
/// path, so the wire transcript is byte-identical for the same seed.
///
/// # Errors
///
/// Fails on channel breakdown or malformed group elements.
pub fn send_with_pool<C: Channel, R: Rng + ?Sized>(
    channel: &mut C,
    group: &DhGroup,
    pairs: &[(Block, Block)],
    rng: &mut R,
    pool: ThreadPool,
) -> Result<(), OtError> {
    let hash = FixedKeyHash::new();
    let elem = group.element_len();
    let (_, big_c) = group.random_keypair(rng);
    channel.send(&group.element_to_bytes(&big_c))?;
    // One flight carrying every PK_0; parse and range-check up front.
    let pk_flight = channel.recv(pairs.len() * elem)?;
    let mut pk0s = Vec::with_capacity(pairs.len());
    for i in 0..pairs.len() {
        let pk0 = group.element_from_bytes(&pk_flight[i * elem..(i + 1) * elem]);
        if pk0.is_zero() || pk0 >= *group.prime() {
            return Err(OtError::Protocol(format!("public key {i} out of range")));
        }
        pk0s.push(pk0);
    }
    // Draw every encryption exponent in the sequential path's order
    // (transfer-major, branch-minor) before fanning out the modexps.
    let exps: Vec<Ubig> = (0..pairs.len() * 2)
        .map(|_| group.random_exponent(rng))
        .collect();
    // One flight carrying both ciphertexts of every transfer. Each
    // transfer's segment is independent, so the pool builds them in
    // parallel and we concatenate in order.
    let segments = pool.map(pairs.len(), 1, |i| {
        let (m0, m1) = &pairs[i];
        let pk0 = &pk0s[i];
        let pk1 = group.div(&big_c, pk0);
        let mut seg = Vec::with_capacity(2 * (elem + 16));
        for (b, (pk, msg)) in [(0u64, (pk0, m0)), (1, (&pk1, m1))] {
            let r = &exps[2 * i + b as usize];
            let gr = group.pow(group.generator(), r);
            let shared = group.pow(pk, r);
            let mask = hash.hash_bytes(&group.element_to_bytes(&shared), (i as u64) << 1 | b);
            seg.extend_from_slice(&group.element_to_bytes(&gr));
            seg.extend_from_slice(&(mask ^ *msg).to_bytes());
        }
        seg
    });
    let mut out = Vec::with_capacity(pairs.len() * 2 * (elem + 16));
    for seg in segments {
        out.extend_from_slice(&seg);
    }
    channel.send(&out)?;
    Ok(())
}

/// Runs the receiver side with precomputed keypairs; returns the chosen
/// message per transfer. The keys are consumed: a discrete log must never
/// serve two protocol runs.
///
/// # Errors
///
/// Fails on channel breakdown or malformed group elements.
///
/// # Panics
///
/// Panics if `keys` does not cover exactly `choices.len()` transfers.
pub fn receive_with<C: Channel>(
    channel: &mut C,
    choices: &[bool],
    keys: ReceiverKeys,
) -> Result<Vec<Block>, OtError> {
    receive_with_pool(channel, choices, keys, ThreadPool::sequential())
}

/// [`receive_with`] with the online modexps — the `PK_0` derivations and
/// the chosen-branch decryptions — fanned out across `pool`. The wire
/// transcript is byte-identical to the sequential path's.
///
/// # Errors
///
/// Fails on channel breakdown or malformed group elements.
///
/// # Panics
///
/// Panics if `keys` does not cover exactly `choices.len()` transfers.
pub fn receive_with_pool<C: Channel>(
    channel: &mut C,
    choices: &[bool],
    keys: ReceiverKeys,
    pool: ThreadPool,
) -> Result<Vec<Block>, OtError> {
    assert_eq!(
        keys.keys.len(),
        choices.len(),
        "precomputed keys must cover every choice"
    );
    let group = &keys.group;
    let hash = FixedKeyHash::new();
    let elem = group.element_len();
    let big_c = group.element_from_bytes(&channel.recv(elem)?);
    // Every PK_0 in one flight. Chosen transfers invert g^k (one modexp
    // via Fermat); these are independent per transfer.
    let pk0s = pool.map(choices.len(), 1, |i| {
        let gk = &keys.keys[i].1;
        if choices[i] {
            group.div(&big_c, gk)
        } else {
            gk.clone()
        }
    });
    let mut pk_flight = Vec::with_capacity(choices.len() * elem);
    for pk0 in &pk0s {
        pk_flight.extend_from_slice(&group.element_to_bytes(pk0));
    }
    channel.send(&pk_flight)?;
    // Both ciphertexts of every transfer in one flight; decrypt only the
    // chosen branch.
    let per_branch = elem + 16;
    let cts = channel.recv(choices.len() * 2 * per_branch)?;
    let out = pool.map(choices.len(), 1, |i| {
        let sigma = choices[i];
        let k = &keys.keys[i].0;
        let off = (2 * i + usize::from(sigma)) * per_branch;
        let gr = group.element_from_bytes(&cts[off..off + elem]);
        let mut ct_arr = [0u8; 16];
        ct_arr.copy_from_slice(&cts[off + elem..off + per_branch]);
        let shared = group.pow(&gr, k);
        let mask = hash.hash_bytes(
            &group.element_to_bytes(&shared),
            (i as u64) << 1 | u64::from(sigma),
        );
        Block::from_bytes(ct_arr) ^ mask
    });
    Ok(out)
}

/// Runs the receiver side, generating keypairs on the spot; returns the
/// chosen message per transfer.
///
/// # Errors
///
/// Fails on channel breakdown or malformed group elements.
pub fn receive<C: Channel, R: Rng + ?Sized>(
    channel: &mut C,
    group: &DhGroup,
    choices: &[bool],
    rng: &mut R,
) -> Result<Vec<Block>, OtError> {
    let keys = ReceiverKeys::generate(group, choices.len(), rng);
    receive_with(channel, choices, keys)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::channel::{mem_pair, ChannelError, MemChannel};

    use super::*;

    fn run_base_ot(choices: Vec<bool>) -> (Vec<(Block, Block)>, Vec<Block>) {
        let group = DhGroup::modp_768();
        let pairs: Vec<(Block, Block)> = (0..choices.len() as u128)
            .map(|i| (Block::from(2 * i), Block::from(2 * i + 1)))
            .collect();
        let (mut ca, mut cb) = mem_pair();
        let g2 = group.clone();
        let pairs2 = pairs.clone();
        let sender = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100);
            send(&mut ca, &g2, &pairs2, &mut rng).unwrap();
        });
        let mut rng = StdRng::seed_from_u64(200);
        let got = receive(&mut cb, &group, &choices, &mut rng).unwrap();
        sender.join().unwrap();
        (pairs, got)
    }

    #[test]
    fn receiver_gets_chosen_messages() {
        let choices = vec![false, true, true, false, true];
        let (pairs, got) = run_base_ot(choices.clone());
        for ((pair, choice), msg) in pairs.iter().zip(&choices).zip(&got) {
            let want = if *choice { pair.1 } else { pair.0 };
            assert_eq!(*msg, want);
        }
    }

    #[test]
    fn all_zero_and_all_one_choices() {
        let (pairs, got) = run_base_ot(vec![false; 4]);
        assert!(pairs.iter().zip(&got).all(|(p, g)| p.0 == *g));
        let (pairs, got) = run_base_ot(vec![true; 4]);
        assert!(pairs.iter().zip(&got).all(|(p, g)| p.1 == *g));
    }

    #[test]
    fn precomputed_keys_match_inline_generation() {
        // The keypairs are peer-independent: generating them long before
        // the transfer must decrypt the same chosen messages.
        let group = DhGroup::modp_768();
        let choices = vec![true, false, true];
        let keys = {
            let mut rng = StdRng::seed_from_u64(77);
            ReceiverKeys::generate(&group, choices.len(), &mut rng)
        };
        assert_eq!(keys.len(), 3);
        assert!(!keys.is_empty());
        let pairs: Vec<(Block, Block)> = (0..3u128)
            .map(|i| (Block::from(i), Block::from(i + 100)))
            .collect();
        let (mut ca, mut cb) = mem_pair();
        let g2 = group.clone();
        let pairs2 = pairs.clone();
        let sender = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(1);
            send(&mut ca, &g2, &pairs2, &mut rng).unwrap();
        });
        let got = receive_with(&mut cb, &choices, keys).unwrap();
        sender.join().unwrap();
        for ((pair, &c), msg) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*msg, if c { pair.1 } else { pair.0 });
        }
    }

    /// A channel spy counting direction changes (send→recv and recv→send
    /// transitions) — the round-trip yardstick the batching satellite
    /// targets.
    struct TurnCounter {
        inner: MemChannel,
        last_was_send: Option<bool>,
        turnarounds: u32,
    }

    impl TurnCounter {
        fn new(inner: MemChannel) -> TurnCounter {
            TurnCounter {
                inner,
                last_was_send: None,
                turnarounds: 0,
            }
        }

        fn note(&mut self, is_send: bool) {
            if self.last_was_send.is_some_and(|l| l != is_send) {
                self.turnarounds += 1;
            }
            self.last_was_send = Some(is_send);
        }
    }

    impl Channel for TurnCounter {
        fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
            self.note(true);
            self.inner.send(data)
        }
        fn recv(&mut self, n: usize) -> Result<Vec<u8>, ChannelError> {
            self.note(false);
            self.inner.recv(n)
        }
        fn bytes_sent(&self) -> u64 {
            self.inner.bytes_sent()
        }
        fn bytes_received(&self) -> u64 {
            self.inner.bytes_received()
        }
    }

    #[test]
    fn flight_count_is_constant_in_the_batch_size() {
        // 4 transfers and 64 transfers must cost the same number of
        // direction changes (the old per-transfer ping-pong grew as 2n).
        let turnarounds = |n: usize| {
            let group = DhGroup::modp_768();
            let pairs = vec![(Block::ZERO, Block::ONES); n];
            let (ca, mut cb) = mem_pair();
            let g2 = group.clone();
            let sender = std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(9);
                let mut chan = TurnCounter::new(ca);
                send(&mut chan, &g2, &pairs, &mut rng).unwrap();
                chan.turnarounds
            });
            let mut rng = StdRng::seed_from_u64(10);
            let _ = receive(&mut cb, &group, &vec![false; n], &mut rng).unwrap();
            sender.join().unwrap()
        };
        let small = turnarounds(4);
        let large = turnarounds(64);
        assert_eq!(small, large, "flights must not grow with the batch");
        assert!(small <= 2, "sender: send C, recv PKs, send cts = 2 turns");
    }

    #[test]
    fn pooled_paths_match_sequential_bit_for_bit() {
        // The pool is a pure perf knob: same seeds, same keys, same wire
        // bytes, same decrypted messages — whatever the worker count.
        let group = DhGroup::modp_768();
        let keys_digest = |pool: ThreadPool| {
            let mut rng = StdRng::seed_from_u64(42);
            let keys = ReceiverKeys::generate_with(&group, 5, &mut rng, pool);
            keys.keys.clone()
        };
        let seq_keys = keys_digest(ThreadPool::sequential());
        assert_eq!(seq_keys, keys_digest(ThreadPool::new(4)));

        let run = |pool: ThreadPool| {
            let choices = vec![true, false, true, true, false];
            let pairs: Vec<(Block, Block)> = (0..choices.len() as u128)
                .map(|i| (Block::from(3 * i), Block::from(3 * i + 7)))
                .collect();
            let (mut ca, mut cb) = mem_pair();
            let g2 = group.clone();
            let pairs2 = pairs.clone();
            let sender = std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(31);
                send_with_pool(&mut ca, &g2, &pairs2, &mut rng, pool).unwrap();
            });
            let mut rng = StdRng::seed_from_u64(32);
            let keys = ReceiverKeys::generate_with(&group, choices.len(), &mut rng, pool);
            let got = receive_with_pool(&mut cb, &choices, keys, pool).unwrap();
            sender.join().unwrap();
            for ((pair, &c), msg) in pairs.iter().zip(&choices).zip(&got) {
                assert_eq!(*msg, if c { pair.1 } else { pair.0 });
            }
            got
        };
        assert_eq!(run(ThreadPool::sequential()), run(ThreadPool::new(4)));

        // Byte-level: script the receiver flight and compare the sender's
        // ciphertext flight across pools.
        let ciphertext_flight = |pool: ThreadPool| {
            let pairs = vec![(Block::from(5u128), Block::from(6u128)); 4];
            let elem = group.element_len();
            let (mut ca, mut cb) = mem_pair();
            let g2 = group.clone();
            let pairs2 = pairs.clone();
            let n = pairs.len();
            let sender = std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(55);
                send_with_pool(&mut ca, &g2, &pairs2, &mut rng, pool).unwrap();
            });
            let _big_c = cb.recv(elem).unwrap();
            let mut pk_flight = Vec::new();
            for i in 0..n {
                let pk0 = group.pow(group.generator(), &Ubig::from(i as u64 + 2));
                pk_flight.extend_from_slice(&group.element_to_bytes(&pk0));
            }
            cb.send(&pk_flight).unwrap();
            let cts = cb.recv(n * 2 * (elem + 16)).unwrap();
            sender.join().unwrap();
            cts
        };
        assert_eq!(
            ciphertext_flight(ThreadPool::sequential()),
            ciphertext_flight(ThreadPool::new(4))
        );
    }

    #[test]
    fn transcript_is_randomized() {
        // Two runs with different sender randomness produce different
        // ciphertext streams even for equal inputs.
        let group = DhGroup::modp_768();
        let pairs = vec![(Block::from(1u128), Block::from(2u128))];
        let transcript = |seed: u64| {
            let (mut ca, mut cb) = mem_pair();
            let g2 = group.clone();
            let pairs2 = pairs.clone();
            let sender = std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                send(&mut ca, &g2, &pairs2, &mut rng).unwrap();
            });
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let _ = receive(&mut cb, &group, &[false], &mut rng).unwrap();
            sender.join().unwrap();
            cb.bytes_received()
        };
        // Same sizes (the protocol is oblivious in length)…
        assert_eq!(transcript(1), transcript(2));
    }
}
