//! Oblivious transfer for DeepSecure's GC step (ii).
//!
//! The evaluator's input wire labels (the server's DL-parameter bits) are
//! delivered through 1-out-of-2 OT (§2.2.1). This crate implements the
//! standard two-tier construction:
//!
//! * [`base`] — a Bellare–Micali-style base OT over the MODP groups of
//!   `deepsecure-bigint` (a few hundred public-key operations).
//! * [`ext`] — IKNP OT extension: 128 base OTs seed pseudorandom
//!   correlations that stretch to millions of wire-label transfers using
//!   only the fixed-key AES hash.
//! * [`channel`] — the byte-counted duplex the two (or three, in
//!   outsourcing mode) parties talk over; the counters are what the
//!   communication columns of Tables 4–6 measure. [`channel::MemChannel`]
//!   joins in-process threads; [`tcp::TcpChannel`] joins real processes
//!   over sockets; [`framed::FramedChannel`] adds length-prefixed message
//!   framing over either; [`sim::SimChannel`] models LAN/WAN latency and
//!   bandwidth in-process; [`fault::FaultChannel`] injects a seeded,
//!   deterministic schedule of delays, short reads/writes, and connection
//!   drops for resilience testing.
//!
//! # Example
//!
//! ```no_run
//! use deepsecure_ot::channel::mem_pair;
//! use deepsecure_ot::ext::{ExtReceiver, ExtSender};
//! use deepsecure_bigint::DhGroup;
//! use deepsecure_crypto::Block;
//! use rand::SeedableRng;
//!
//! let (mut ca, mut cb) = mem_pair();
//! let group = DhGroup::modp_768();
//! let g2 = group.clone();
//! let handle = std::thread::spawn(move || {
//!     let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!     let mut sender = ExtSender::setup(&mut ca, &g2, &mut rng).unwrap();
//!     sender
//!         .send(&mut ca, &[(Block::from(1u128), Block::from(2u128))])
//!         .unwrap();
//! });
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let mut receiver = ExtReceiver::setup(&mut cb, &group, &mut rng).unwrap();
//! let got = receiver.receive(&mut cb, &[true]).unwrap();
//! assert_eq!(got[0], Block::from(2u128));
//! handle.join().unwrap();
//! ```

pub mod base;
pub mod channel;
pub mod ext;
pub mod fault;
pub mod framed;
pub mod sim;
pub mod tcp;

pub use base::ReceiverKeys;
pub use channel::{mem_pair, Channel, ChannelError, MemChannel};
pub use ext::SenderPrecomp;
pub use fault::{ChaosSpec, FaultChannel, FaultProfile};
pub use framed::FramedChannel;
pub use sim::{NetModel, SimChannel};
pub use tcp::{tcp_pair, TcpChannel};

/// Errors produced by the OT protocols.
#[derive(Debug)]
pub enum OtError {
    /// The underlying channel failed (peer hung up).
    Channel(ChannelError),
    /// A received group element or message was malformed.
    Protocol(String),
}

impl std::fmt::Display for OtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OtError::Channel(e) => write!(f, "ot channel failure: {e}"),
            OtError::Protocol(m) => write!(f, "ot protocol violation: {m}"),
        }
    }
}

impl std::error::Error for OtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OtError::Channel(e) => Some(e),
            OtError::Protocol(_) => None,
        }
    }
}

impl From<ChannelError> for OtError {
    fn from(e: ChannelError) -> OtError {
        OtError::Channel(e)
    }
}
