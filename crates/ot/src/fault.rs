//! Deterministic fault injection: the chaos layer behind `--chaos`.
//!
//! [`FaultChannel`] wraps any [`Channel`] and injects delays, short
//! reads/writes, and connection drops according to a schedule that is a
//! pure function of `(seed, profile, operation index)` — never of wall
//! time, payload contents, or thread interleaving. The same seed and
//! profile therefore produce the byte-identical fault schedule on every
//! run (asserted by test), which is what makes every failure mode this
//! layer can produce reproducible in CI.
//!
//! Short reads and writes split an operation into two inner operations
//! moving the same bytes, so a chaotic run that completes is
//! wire-identical to a clean one — `--check` replay stays valid under
//! chaos. Drops surface as [`ChannelError`]s with a
//! [`std::io::ErrorKind::ConnectionReset`] source, exactly what a real
//! mid-protocol disconnect produces, and poison the channel: every later
//! operation fails too, as on a closed socket.

use std::time::Duration;

use crate::channel::{Channel, ChannelError};

/// One injected fault, for the recorded schedule (`fault_log`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation was delayed before running.
    Delay,
    /// A receive was split into two shorter receives.
    ShortRead,
    /// A send was split into two shorter sends.
    ShortWrite,
    /// The connection was dropped at this operation.
    Drop,
}

/// A schedule entry: which operation drew which fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Zero-based operation index (each send/recv is one operation).
    pub op: u64,
    /// The injected fault.
    pub kind: FaultKind,
}

/// Named chaos profile: which fault mix a [`FaultChannel`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults; the channel is a transparent pass-through.
    Off,
    /// Random per-operation delays (slow-link jitter).
    Delays,
    /// Short reads and writes (partial I/O; same bytes, split ops).
    ShortOps,
    /// Rare connection drops (the retry/resumption exercise).
    Drops,
    /// Delays + short ops + drops together.
    Mixed,
}

impl FaultProfile {
    /// Parses a profile name as used by `--chaos <seed>:<profile>`.
    ///
    /// # Errors
    ///
    /// Lists the known profile names.
    pub fn parse(name: &str) -> Result<FaultProfile, String> {
        match name {
            "off" => Ok(FaultProfile::Off),
            "delays" => Ok(FaultProfile::Delays),
            "short" => Ok(FaultProfile::ShortOps),
            "drops" => Ok(FaultProfile::Drops),
            "mixed" => Ok(FaultProfile::Mixed),
            other => Err(format!(
                "unknown chaos profile {other:?} (known: off, delays, short, drops, mixed)"
            )),
        }
    }

    /// The profile's canonical name (the `--chaos` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            FaultProfile::Off => "off",
            FaultProfile::Delays => "delays",
            FaultProfile::ShortOps => "short",
            FaultProfile::Drops => "drops",
            FaultProfile::Mixed => "mixed",
        }
    }

    /// The per-operation fault rates this profile injects. Rates are in
    /// units of 1/1024 (compared against 10-bit slices of one per-op
    /// draw); the drop rate is kept rare so sessions under chaos make
    /// progress between failures.
    fn params(self) -> FaultParams {
        match self {
            FaultProfile::Off => FaultParams::NONE,
            FaultProfile::Delays => FaultParams {
                delay_in_1024: 154, // ~15% of ops
                delay: Duration::from_micros(300),
                ..FaultParams::NONE
            },
            FaultProfile::ShortOps => FaultParams {
                short_in_1024: 256, // 25% of ops
                ..FaultParams::NONE
            },
            FaultProfile::Drops => FaultParams {
                drop_in_1024: 2, // ~0.2% of ops
                ..FaultParams::NONE
            },
            FaultProfile::Mixed => FaultParams {
                delay_in_1024: 102,
                delay: Duration::from_micros(200),
                short_in_1024: 154,
                drop_in_1024: 2,
            },
        }
    }
}

/// Per-operation fault rates (units of 1/1024) plus the delay length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FaultParams {
    delay_in_1024: u32,
    delay: Duration,
    short_in_1024: u32,
    drop_in_1024: u32,
}

impl FaultParams {
    const NONE: FaultParams = FaultParams {
        delay_in_1024: 0,
        delay: Duration::ZERO,
        short_in_1024: 0,
        drop_in_1024: 0,
    };

    fn is_none(&self) -> bool {
        self.delay_in_1024 == 0 && self.short_in_1024 == 0 && self.drop_in_1024 == 0
    }
}

/// A parsed `--chaos` knob: `<seed>:<profile>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Fault-schedule seed.
    pub seed: u64,
    /// Fault mix.
    pub profile: FaultProfile,
}

impl ChaosSpec {
    /// Parses `"<seed>:<profile>"` (e.g. `"7:drops"`, `"42:mixed"`).
    ///
    /// # Errors
    ///
    /// Describes the malformed part.
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        let (seed, profile) = s
            .split_once(':')
            .ok_or_else(|| format!("chaos spec {s:?} is not <seed>:<profile>"))?;
        Ok(ChaosSpec {
            seed: seed
                .parse()
                .map_err(|_| format!("bad chaos seed {seed:?} in {s:?}"))?,
            profile: FaultProfile::parse(profile)?,
        })
    }
}

impl std::fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.seed, self.profile.name())
    }
}

/// How many schedule entries [`FaultChannel::fault_log`] retains; long
/// chaotic load runs keep running, they just stop recording.
const LOG_CAP: usize = 4096;

/// splitmix64: the per-operation draw. Statistically fine for fault
/// scheduling and trivially reproducible — determinism is the point.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fault-injecting wrapper around any [`Channel`].
///
/// Byte counters delegate to the wrapped channel exactly: an injected
/// short read moves the same bytes in two inner operations, so a chaotic
/// run that completes reports the same wire totals as a clean one.
pub struct FaultChannel<C> {
    inner: C,
    params: FaultParams,
    rng: u64,
    op: u64,
    /// A scripted drop at exactly this operation index (tests pin drops
    /// to specific protocol phases with it); random drops come from
    /// `params` instead.
    drop_at: Option<u64>,
    dropped: bool,
    log: Vec<FaultEvent>,
}

impl<C> std::fmt::Debug for FaultChannel<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultChannel")
            .field("op", &self.op)
            .field("dropped", &self.dropped)
            .field("faults", &self.log.len())
            .finish_non_exhaustive()
    }
}

impl<C: Channel> FaultChannel<C> {
    /// Wraps `inner` with the spec's fault schedule.
    pub fn new(inner: C, spec: ChaosSpec) -> FaultChannel<C> {
        FaultChannel {
            inner,
            params: spec.profile.params(),
            rng: spec.seed,
            op: 0,
            drop_at: None,
            dropped: false,
            log: Vec::new(),
        }
    }

    /// A pass-through wrapper injecting nothing — lets callers keep one
    /// concrete channel type whether chaos is on or off.
    pub fn transparent(inner: C) -> FaultChannel<C> {
        FaultChannel::new(
            inner,
            ChaosSpec {
                seed: 0,
                profile: FaultProfile::Off,
            },
        )
    }

    /// Whether this wrapper can inject anything at all.
    pub fn is_transparent(&self) -> bool {
        self.params.is_none() && self.drop_at.is_none()
    }

    /// Operations (sends + receives) performed so far — the schedule's
    /// clock, which [`FaultChannel::set_drop_at`] indices refer to.
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Scripts a connection drop at exactly operation `op` (in addition
    /// to any profile-driven faults) — how tests pin a drop to a chosen
    /// protocol phase.
    pub fn set_drop_at(&mut self, op: u64) {
        self.drop_at = Some(op);
    }

    /// The recorded fault schedule (capped at an internal limit).
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// The wrapped channel.
    pub fn inner_ref(&self) -> &C {
        &self.inner
    }

    /// The wrapped channel, mutably (e.g. to set socket timeouts).
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// Unwraps the channel.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn note(&mut self, kind: FaultKind) {
        if self.log.len() < LOG_CAP {
            self.log.push(FaultEvent { op: self.op, kind });
        }
    }

    /// Runs the pre-operation schedule: maybe delay, maybe drop, and
    /// decide whether to split the operation. Draws exactly one value per
    /// operation so the schedule depends only on the operation index.
    fn pre_op(&mut self, short_kind: FaultKind) -> Result<bool, ChannelError> {
        if self.dropped {
            return Err(ChannelError::io(
                format!("chaos: operation {} on a dropped connection", self.op),
                std::io::Error::new(std::io::ErrorKind::BrokenPipe, "chaos drop"),
            ));
        }
        if self.is_transparent() {
            return Ok(false);
        }
        let draw = splitmix(&mut self.rng);
        let scripted = self.drop_at == Some(self.op);
        if scripted || (draw & 1023) < u64::from(self.params.drop_in_1024) {
            self.note(FaultKind::Drop);
            self.dropped = true;
            let op = self.op;
            self.op += 1;
            return Err(ChannelError::io(
                format!("chaos: injected connection drop at operation {op}"),
                std::io::Error::new(std::io::ErrorKind::ConnectionReset, "chaos drop"),
            ));
        }
        if ((draw >> 10) & 1023) < u64::from(self.params.delay_in_1024) {
            self.note(FaultKind::Delay);
            std::thread::sleep(self.params.delay);
        }
        let split = ((draw >> 20) & 1023) < u64::from(self.params.short_in_1024);
        if split {
            self.note(short_kind);
        }
        // The split point reuses bits of the same draw, keeping one draw
        // per operation.
        Ok(split)
    }

    /// The split point for a short operation on `n` bytes: in `1..n`,
    /// derived from the per-op draw stream.
    fn split_point(&mut self, n: usize) -> usize {
        1 + (splitmix(&mut self.rng) as usize) % (n - 1)
    }
}

impl<C: Channel> Channel for FaultChannel<C> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        let split = self.pre_op(FaultKind::ShortWrite)?;
        if split && data.len() >= 2 {
            let k = self.split_point(data.len());
            self.inner.send(&data[..k])?;
            self.inner.send(&data[k..])?;
        } else {
            self.inner.send(data)?;
        }
        self.op += 1;
        Ok(())
    }

    fn recv(&mut self, n: usize) -> Result<Vec<u8>, ChannelError> {
        let split = self.pre_op(FaultKind::ShortRead)?;
        let out = if split && n >= 2 {
            let k = self.split_point(n);
            let mut head = self.inner.recv(k)?;
            head.extend(self.inner.recv(n - k)?);
            head
        } else {
            self.inner.recv(n)?
        };
        self.op += 1;
        Ok(out)
    }

    fn flush(&mut self) -> Result<(), ChannelError> {
        if self.dropped {
            return Err(ChannelError::io(
                "chaos: flush on a dropped connection".to_string(),
                std::io::Error::new(std::io::ErrorKind::BrokenPipe, "chaos drop"),
            ));
        }
        self.inner.flush()
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }
}

#[cfg(test)]
mod tests {
    use crate::channel::mem_pair;

    use super::*;

    fn spec(seed: u64, profile: FaultProfile) -> ChaosSpec {
        ChaosSpec { seed, profile }
    }

    /// Drives `ops` send/recv rounds through a fault channel against a
    /// plain peer and returns the recorded schedule.
    fn run_schedule(seed: u64, profile: FaultProfile, ops: usize) -> Vec<FaultEvent> {
        let (a, mut b) = mem_pair();
        let mut chaotic = FaultChannel::new(a, spec(seed, profile));
        for i in 0..ops {
            let payload = vec![i as u8; 16 + i % 7];
            if chaotic.send(&payload).is_err() {
                break;
            }
            if b.recv(payload.len()).is_err() {
                break;
            }
            if b.send(&payload).is_err() {
                break;
            }
            if chaotic.recv(payload.len()).is_err() {
                break;
            }
        }
        chaotic.fault_log().to_vec()
    }

    #[test]
    fn same_seed_and_profile_yield_byte_identical_schedules() {
        for profile in [
            FaultProfile::Delays,
            FaultProfile::ShortOps,
            FaultProfile::Drops,
            FaultProfile::Mixed,
        ] {
            let a = run_schedule(42, profile, 400);
            let b = run_schedule(42, profile, 400);
            assert_eq!(a, b, "profile {profile:?} schedule must be deterministic");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_schedule(1, FaultProfile::Mixed, 400);
        let b = run_schedule(2, FaultProfile::Mixed, 400);
        assert_ne!(a, b, "distinct seeds should produce distinct schedules");
    }

    #[test]
    fn short_ops_move_identical_bytes() {
        // A profile of pure short reads/writes must deliver exactly the
        // clean byte stream with exact counters.
        let (a, mut b) = mem_pair();
        let mut chaotic = FaultChannel::new(a, spec(9, FaultProfile::ShortOps));
        let mut sent_total = Vec::new();
        for i in 0..200u32 {
            let payload: Vec<u8> = (0..32).map(|j| (i + j) as u8).collect();
            chaotic.send(&payload).unwrap();
            sent_total.extend_from_slice(&payload);
        }
        let got = b.recv(sent_total.len()).unwrap();
        assert_eq!(got, sent_total);
        assert_eq!(chaotic.bytes_sent(), sent_total.len() as u64);
        assert!(
            chaotic
                .fault_log()
                .iter()
                .any(|f| f.kind == FaultKind::ShortWrite),
            "200 ops at 25% short rate must split at least once"
        );
    }

    #[test]
    fn drops_poison_the_channel() {
        let (a, _b) = mem_pair();
        let mut chaotic = FaultChannel::new(a, spec(0, FaultProfile::Off));
        chaotic.set_drop_at(1);
        chaotic.send(b"ok").unwrap();
        let err = chaotic.send(b"dropped").unwrap_err();
        assert!(
            err.to_string().contains("injected connection drop"),
            "{err}"
        );
        let source = std::error::Error::source(&err).unwrap();
        assert!(source.to_string().contains("chaos drop"));
        // Poisoned: every later operation fails like a closed socket.
        assert!(chaotic.send(b"later").is_err());
        assert!(chaotic.recv(1).is_err());
        assert!(chaotic.flush().is_err());
        assert_eq!(
            chaotic.fault_log(),
            &[FaultEvent {
                op: 1,
                kind: FaultKind::Drop
            }]
        );
    }

    #[test]
    fn transparent_wrapper_is_a_pass_through() {
        let (a, mut b) = mem_pair();
        let mut chan = FaultChannel::transparent(a);
        assert!(chan.is_transparent());
        chan.send(b"hello").unwrap();
        assert_eq!(b.recv(5).unwrap(), b"hello");
        assert!(chan.fault_log().is_empty());
        assert_eq!(chan.bytes_sent(), 5);
    }

    #[test]
    fn chaos_spec_parses_and_round_trips() {
        let s = ChaosSpec::parse("42:mixed").unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.profile, FaultProfile::Mixed);
        assert_eq!(s.to_string(), "42:mixed");
        assert!(ChaosSpec::parse("nope").is_err());
        assert!(ChaosSpec::parse("x:mixed").is_err());
        assert!(ChaosSpec::parse("3:tornado").unwrap_err().contains("known"));
    }
}
