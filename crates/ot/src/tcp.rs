//! Real socket transport: the byte-counted [`Channel`] over TCP.
//!
//! This is what separates the two parties into genuinely distinct
//! processes (the `two_party` binary) while running the *same* session
//! code as the in-memory tests. Writes go through a [`BufWriter`] so the
//! per-gate sends of the garbling stream coalesce into few syscalls; the
//! buffer is flushed automatically before any blocking read, which is what
//! keeps strictly alternating protocols (base OT, IKNP) deadlock-free.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::channel::{Channel, ChannelError};

/// Write-buffer capacity. Garbled-table sends are tens of KiB; one
/// buffer's worth per syscall keeps the hot path out of the kernel.
const WRITE_BUF: usize = 1 << 16;

/// A byte-counted duplex [`Channel`] over one TCP connection.
///
/// The counters count protocol payload bytes exactly as [`super::channel::MemChannel`]
/// does — a loopback run and an in-memory run of the same protocol report
/// identical totals (TCP/IP header overhead is not modelled; framing, if
/// any, is accounted by [`crate::FramedChannel`]).
pub struct TcpChannel {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    peer: SocketAddr,
    sent: u64,
    received: u64,
    /// Bytes written since the last flush — flushed lazily on `recv`.
    pending: bool,
}

impl std::fmt::Debug for TcpChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpChannel")
            .field("peer", &self.peer)
            .field("sent", &self.sent)
            .field("received", &self.received)
            .finish_non_exhaustive()
    }
}

impl TcpChannel {
    /// Wraps an established stream (disables Nagle: the protocol is a
    /// ping-pong of latency-critical messages).
    ///
    /// # Errors
    ///
    /// Fails if the socket options cannot be read or set.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<TcpChannel> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::with_capacity(WRITE_BUF, stream);
        Ok(TcpChannel {
            reader,
            writer,
            peer,
            sent: 0,
            received: 0,
            pending: false,
        })
    }

    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Fails if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<TcpChannel> {
        TcpChannel::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects, retrying with capped exponential backoff until `timeout`
    /// elapses — lets a client process start before its server has bound
    /// the port without hammering the listener at a fixed cadence. Each
    /// backoff carries ±50% deterministic-per-process jitter (seeded from
    /// the process ID and attempt count), so a fleet of simultaneous
    /// clients does not retry in lockstep and reconnect stampedes spread
    /// out. Permanent errors (unresolvable host, unreachable network)
    /// surface immediately.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] whose context records the attempt count
    /// and total elapsed time, with the last underlying
    /// [`std::io::Error`] as its source — either the first permanent
    /// error or the final refusal once `timeout` has elapsed.
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> Result<TcpChannel, ChannelError> {
        const INITIAL_BACKOFF: Duration = Duration::from_millis(10);
        const MAX_BACKOFF: Duration = Duration::from_millis(500);
        let start = Instant::now();
        let mut backoff = INITIAL_BACKOFF;
        let mut attempts: u32 = 0;
        let mut jitter_state = u64::from(std::process::id()) ^ 0x5eed_cafe;
        loop {
            attempts += 1;
            match TcpChannel::connect(addr.clone()) {
                Ok(chan) => return Ok(chan),
                // Only the listener-not-up-yet races are worth waiting
                // out; anything else the first attempt already decided.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionRefused
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    let elapsed = start.elapsed();
                    if elapsed >= timeout {
                        return Err(ChannelError::io(
                            format!(
                                "connecting: gave up after {attempts} attempts over \
                                 {:.2} s (capped exponential backoff with jitter)",
                                elapsed.as_secs_f64()
                            ),
                            e,
                        ));
                    }
                    // Full backoff ±50% jitter; never sleep past the
                    // deadline. Lockstep retries from many clients would
                    // otherwise synchronize their reconnect storms.
                    let sleep = jittered(backoff, &mut jitter_state);
                    std::thread::sleep(sleep.min(timeout - elapsed));
                    backoff = (backoff * 2).min(MAX_BACKOFF);
                }
                Err(e) => {
                    return Err(ChannelError::io(
                        format!(
                            "connecting: permanent error on attempt {attempts} after \
                             {:.2} s",
                            start.elapsed().as_secs_f64()
                        ),
                        e,
                    ))
                }
            }
        }
    }

    /// Accepts one connection from a bound listener.
    ///
    /// # Errors
    ///
    /// Fails if accepting or configuring the connection fails.
    pub fn accept(listener: &TcpListener) -> std::io::Result<TcpChannel> {
        let (stream, _) = listener.accept()?;
        TcpChannel::from_stream(stream)
    }

    /// Sets per-operation socket timeouts (SO_RCVTIMEO / SO_SNDTIMEO):
    /// any single blocking read or write that stalls longer than its
    /// timeout fails with [`std::io::ErrorKind::WouldBlock`]/`TimedOut`
    /// instead of pinning the session forever — the per-phase deadline
    /// primitive under a session-level deadline. `None` restores blocking
    /// I/O.
    ///
    /// # Errors
    ///
    /// Fails if the socket options cannot be set (or a timeout is zero).
    pub fn set_io_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(read)?;
        self.reader.get_ref().set_write_timeout(write)?;
        Ok(())
    }

    /// The remote endpoint's address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Closes both directions of the socket immediately (best effort).
    /// A reconnecting client calls this *before* dialing again so the
    /// peer's blocked I/O on the dead connection fails promptly instead
    /// of lingering until this endpoint's buffers drop.
    pub fn shutdown(&self) {
        let _ = self.reader.get_ref().shutdown(std::net::Shutdown::Both);
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        if data.len() >= WRITE_BUF {
            // Write-through: a payload at least one buffer long (a garbled
            // table chunk, say) gains nothing from coalescing — route it
            // straight to the socket instead of memcpying it through the
            // buffer. Earlier buffered bytes drain first to keep order.
            self.writer.flush().map_err(|e| {
                ChannelError::io(format!("flushing to {} before write-through", self.peer), e)
            })?;
            self.writer.get_mut().write_all(data).map_err(|e| {
                ChannelError::io(
                    format!(
                        "sending {} bytes to {} (write-through)",
                        data.len(),
                        self.peer
                    ),
                    e,
                )
            })?;
            self.sent += data.len() as u64;
            // Buffer drained and payload on the socket: nothing pending.
            self.pending = false;
            return Ok(());
        }
        self.writer.write_all(data).map_err(|e| {
            ChannelError::io(format!("sending {} bytes to {}", data.len(), self.peer), e)
        })?;
        self.sent += data.len() as u64;
        self.pending = true;
        Ok(())
    }

    fn recv(&mut self, n: usize) -> Result<Vec<u8>, ChannelError> {
        // A blocking read while our own output sits in the write buffer
        // would deadlock an alternating protocol: push it out first.
        if self.pending {
            self.flush()?;
        }
        let mut buf = vec![0u8; n];
        self.reader.read_exact(&mut buf).map_err(|e| {
            let context = if e.kind() == std::io::ErrorKind::UnexpectedEof {
                format!(
                    "receiving {n} bytes from {}: peer disconnected mid-message",
                    self.peer
                )
            } else {
                format!("receiving {n} bytes from {}", self.peer)
            };
            ChannelError::io(context, e)
        })?;
        self.received += n as u64;
        Ok(buf)
    }

    fn flush(&mut self) -> Result<(), ChannelError> {
        self.writer
            .flush()
            .map_err(|e| ChannelError::io(format!("flushing to {}", self.peer), e))?;
        self.pending = false;
        Ok(())
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

/// `backoff` scaled by a factor drawn uniformly from [0.5, 1.5): full
/// backoff ±50% jitter, from a splitmix64 step of `state`.
fn jittered(backoff: Duration, state: &mut u64) -> Duration {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // factor in [512, 1536) / 1024
    let factor = 512 + (z & 1023);
    Duration::from_nanos((backoff.as_nanos() as u64 / 1024).saturating_mul(factor))
}

/// Creates a connected loopback pair on an ephemeral port — the TCP
/// analogue of [`crate::mem_pair`], used by tests and benches.
///
/// # Errors
///
/// Fails if the loopback listener cannot be bound or connected to.
pub fn tcp_pair() -> std::io::Result<(TcpChannel, TcpChannel)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    // The kernel completes the handshake into the accept backlog, so the
    // sequential connect-then-accept cannot deadlock.
    let a = TcpChannel::connect(addr)?;
    let b = TcpChannel::accept(&listener)?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip_and_counters() {
        let (mut a, mut b) = tcp_pair().unwrap();
        a.send(b"hello").unwrap();
        a.send(b" world").unwrap();
        // recv flushes a's buffer lazily — but b's recv can't flush a's
        // writer; the data must already be on the wire after a.flush().
        a.flush().unwrap();
        assert_eq!(b.recv(11).unwrap(), b"hello world");
        assert_eq!(a.bytes_sent(), 11);
        assert_eq!(b.bytes_received(), 11);
    }

    #[test]
    fn duplex_ping_pong_with_lazy_flush() {
        let (mut a, mut b) = tcp_pair().unwrap();
        let t = std::thread::spawn(move || {
            // No explicit flush: b's recv must flush its pending send.
            b.send(b"pong").unwrap();
            assert_eq!(b.recv(4).unwrap(), b"ping");
            b
        });
        a.send(b"ping").unwrap();
        assert_eq!(a.recv(4).unwrap(), b"pong");
        t.join().unwrap();
    }

    #[test]
    fn disconnect_surfaces_peer_and_cause() {
        let (a, mut b) = tcp_pair().unwrap();
        drop(a);
        let err = b.recv(1).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("127.0.0.1"), "missing peer: {text}");
        assert!(text.contains("disconnected"), "missing cause: {text}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn connect_retry_waits_out_a_slow_listener() {
        // Reserve a port, free it, then rebind it a little later: the
        // client's first attempts are refused and the backoff loop must
        // win the race once the listener is up.
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let listener = TcpListener::bind(addr).unwrap();
            let _conn = listener.accept().unwrap();
        });
        let chan = TcpChannel::connect_retry(addr, Duration::from_secs(10)).unwrap();
        assert_eq!(chan.peer_addr(), addr);
        server.join().unwrap();
    }

    #[test]
    fn connect_retry_exhaustion_reports_attempts_and_last_error() {
        // Nothing ever listens: the error must carry the retry story in
        // its context and the final io::Error as its source.
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        let start = Instant::now();
        let err = TcpChannel::connect_retry(addr, Duration::from_millis(200)).unwrap_err();
        assert!(start.elapsed() >= Duration::from_millis(200));
        let text = err.to_string();
        assert!(text.contains("attempts"), "missing attempt count: {text}");
        assert!(
            std::error::Error::source(&err).is_some(),
            "last io::Error must be the source"
        );
    }

    #[test]
    fn large_writes_bypass_the_buffer_with_exact_counters() {
        // A payload ≥ the write buffer goes straight to the socket (no
        // memcpy through the 64 KiB buffer) — and the counters, ordering,
        // and interleaving with small buffered writes stay exact.
        let (mut a, mut b) = tcp_pair().unwrap();
        let small = vec![1u8; 100];
        let large = vec![2u8; WRITE_BUF + 4096]; // forces write-through
        let tail = vec![3u8; 7];
        let t = std::thread::spawn(move || {
            a.send(&small).unwrap(); // buffered
            a.send(&large).unwrap(); // drains the buffer, then direct
            a.send(&tail).unwrap(); // buffered again
            a.flush().unwrap();
            a
        });
        let total = 100 + WRITE_BUF + 4096 + 7;
        let got = b.recv(total).unwrap();
        assert!(got[..100].iter().all(|&x| x == 1));
        assert!(got[100..100 + WRITE_BUF + 4096].iter().all(|&x| x == 2));
        assert!(got[total - 7..].iter().all(|&x| x == 3));
        let a = t.join().unwrap();
        assert_eq!(a.bytes_sent(), total as u64);
        assert_eq!(b.bytes_received(), total as u64);
    }

    #[test]
    fn write_through_then_recv_does_not_deadlock() {
        // After a write-through send nothing is pending, but a recv that
        // follows small buffered sends must still flush them first.
        let (mut a, mut b) = tcp_pair().unwrap();
        let large = vec![9u8; WRITE_BUF];
        let t = std::thread::spawn(move || {
            b.send(&large).unwrap(); // write-through, no pending
            b.send(b"ask").unwrap(); // buffered
            assert_eq!(b.recv(2).unwrap(), b"ok"); // lazy flush of "ask"
            b
        });
        assert_eq!(a.recv(WRITE_BUF).unwrap(), vec![9u8; WRITE_BUF]);
        assert_eq!(a.recv(3).unwrap(), b"ask");
        a.send(b"ok").unwrap();
        a.flush().unwrap();
        t.join().unwrap();
    }

    #[test]
    fn block_helpers_work_over_tcp() {
        use deepsecure_crypto::Block;
        let (mut a, mut b) = tcp_pair().unwrap();
        let t = std::thread::spawn(move || {
            a.send_blocks(&[Block::from(7u128), Block::from(9u128)])
                .unwrap();
            a.send_bits(&[true, false, true]).unwrap();
            a.flush().unwrap();
            a
        });
        assert_eq!(
            b.recv_blocks(2).unwrap(),
            vec![Block::from(7u128), Block::from(9u128)]
        );
        assert_eq!(b.recv_bits().unwrap(), vec![true, false, true]);
        t.join().unwrap();
    }
}
