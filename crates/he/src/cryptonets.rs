//! CryptoNets-style homomorphic network evaluation.
//!
//! CryptoNets batches **samples into slots**: every pixel position gets one
//! ciphertext whose `n` slots carry that pixel across `n` different
//! samples. A layer is then scalar-weight arithmetic over ciphertexts and
//! the nonlinearity is squaring (`x²` is the only cheap HE activation —
//! the polynomial-approximation limitation the paper contrasts with GC's
//! exact MUX-based ReLU).
//!
//! The cost consequence reproduced here and in Figure 6: *one* forward
//! pass costs the same whether 1 or `n` samples occupy the slots, so
//! CryptoNets amortizes beautifully at batch 8192 and terribly at batch 1,
//! while DeepSecure is linear in the sample count.

use rand::Rng;

use crate::{Bfv, Ciphertext, EvalKey, SecretKey};

/// A CryptoNets-style network over scaled integers: one hidden "conv"
/// stage (weight sharing left to the caller's weight matrix), a square
/// activation, and a dense readout.
#[derive(Clone, Debug)]
pub struct SquareNet {
    /// First-layer weights, `hidden × inputs`, scaled integers.
    pub w1: Vec<Vec<i64>>,
    /// First-layer bias (same scale as `w1·x`).
    pub b1: Vec<i64>,
    /// Readout weights, `classes × hidden`.
    pub w2: Vec<Vec<i64>>,
    /// Readout bias.
    pub b2: Vec<i64>,
}

impl SquareNet {
    /// Plaintext integer reference (per sample).
    pub fn forward_plain(&self, x: &[i64]) -> Vec<i64> {
        let hidden: Vec<i64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(row, b)| {
                let z: i64 = row.iter().zip(x).map(|(w, v)| w * v).sum::<i64>() + b;
                z * z
            })
            .collect();
        self.w2
            .iter()
            .zip(&self.b2)
            .map(|(row, b)| row.iter().zip(&hidden).map(|(w, v)| w * v).sum::<i64>() + b)
            .collect()
    }

    /// Plaintext argmax prediction.
    pub fn predict_plain(&self, x: &[i64]) -> usize {
        argmax(&self.forward_plain(x))
    }
}

fn argmax(xs: &[i64]) -> usize {
    let mut best = 0;
    for (i, v) in xs.iter().enumerate() {
        if *v > xs[best] {
            best = i;
        }
    }
    best
}

/// Encrypts a batch: `samples[s][p]` is pixel `p` of sample `s`; returns
/// one ciphertext per pixel position with samples in slots.
pub fn encrypt_batch<R: Rng + ?Sized>(
    bfv: &Bfv,
    sk: &SecretKey,
    samples: &[Vec<i64>],
    rng: &mut R,
) -> Vec<Ciphertext> {
    assert!(!samples.is_empty(), "empty batch");
    assert!(
        samples.len() <= bfv.params().slots(),
        "batch exceeds slot count"
    );
    let pixels = samples[0].len();
    (0..pixels)
        .map(|p| {
            let column: Vec<i64> = samples.iter().map(|s| s[p]).collect();
            bfv.encrypt(sk, &bfv.encode_signed(&column), rng)
        })
        .collect()
}

/// Homomorphically evaluates the network on an encrypted batch; returns
/// one ciphertext per output class (slots = samples).
pub fn evaluate(
    bfv: &Bfv,
    net: &SquareNet,
    inputs: &[Ciphertext],
    evk: &EvalKey,
) -> Vec<Ciphertext> {
    let hidden: Vec<Ciphertext> = net
        .w1
        .iter()
        .zip(&net.b1)
        .map(|(row, &b)| {
            let mut acc: Option<Ciphertext> = None;
            for (w, ct) in row.iter().zip(inputs) {
                if *w == 0 {
                    continue;
                }
                let term = bfv.mul_plain_scalar(ct, *w);
                acc = Some(match acc {
                    None => term,
                    Some(a) => bfv.add(&a, &term),
                });
            }
            let mut z = acc.expect("layer with all-zero weights");
            let bias = bfv.encode_signed(&vec![b; bfv.params().slots()]);
            z = bfv.add_plain(&z, &bias);
            bfv.square(&z, evk)
        })
        .collect();
    net.w2
        .iter()
        .zip(&net.b2)
        .map(|(row, &b)| {
            let mut acc: Option<Ciphertext> = None;
            for (w, ct) in row.iter().zip(&hidden) {
                if *w == 0 {
                    continue;
                }
                let term = bfv.mul_plain_scalar(ct, *w);
                acc = Some(match acc {
                    None => term,
                    Some(a) => bfv.add(&a, &term),
                });
            }
            let mut z = acc.expect("readout with all-zero weights");
            let bias = bfv.encode_signed(&vec![b; bfv.params().slots()]);
            z = bfv.add_plain(&z, &bias);
            z
        })
        .collect()
}

/// Decrypts per-class ciphertexts and argmaxes per sample.
pub fn decrypt_predictions(
    bfv: &Bfv,
    sk: &SecretKey,
    logits: &[Ciphertext],
    batch: usize,
) -> Vec<usize> {
    let slots: Vec<Vec<i64>> = logits
        .iter()
        .map(|ct| bfv.decode_signed(&bfv.decrypt(sk, ct)))
        .collect();
    (0..batch)
        .map(|s| {
            let scores: Vec<i64> = slots.iter().map(|class| class[s]).collect();
            argmax(&scores)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::Params;

    use super::*;

    fn tiny_net() -> SquareNet {
        SquareNet {
            w1: vec![vec![1, 2, -1, 0], vec![0, 1, 1, -2], vec![2, 0, -1, 1]],
            b1: vec![1, 0, -1],
            w2: vec![vec![1, -1, 2], vec![-2, 1, 1]],
            b2: vec![0, 3],
        }
    }

    #[test]
    fn homomorphic_matches_plaintext() {
        let bfv = Bfv::new(Params::toy());
        let mut rng = StdRng::seed_from_u64(9);
        let sk = bfv.keygen(&mut rng);
        let evk = bfv.eval_keygen(&sk, &mut rng);
        let net = tiny_net();
        let samples: Vec<Vec<i64>> = vec![
            vec![1, 2, 3, 4],
            vec![-1, 0, 2, 1],
            vec![3, -2, 1, 0],
            vec![0, 0, 0, 1],
        ];
        let cts = encrypt_batch(&bfv, &sk, &samples, &mut rng);
        let logits = evaluate(&bfv, &net, &cts, &evk);
        let preds = decrypt_predictions(&bfv, &sk, &logits, samples.len());
        for (sample, pred) in samples.iter().zip(&preds) {
            assert_eq!(*pred, net.predict_plain(sample), "sample {sample:?}");
        }
    }

    #[test]
    fn logit_values_match_exactly() {
        let bfv = Bfv::new(Params::toy());
        let mut rng = StdRng::seed_from_u64(10);
        let sk = bfv.keygen(&mut rng);
        let evk = bfv.eval_keygen(&sk, &mut rng);
        let net = tiny_net();
        let samples = vec![vec![2, 1, -1, 3]];
        let cts = encrypt_batch(&bfv, &sk, &samples, &mut rng);
        let logits = evaluate(&bfv, &net, &cts, &evk);
        let want = net.forward_plain(&samples[0]);
        for (ct, w) in logits.iter().zip(&want) {
            let got = bfv.decode_signed(&bfv.decrypt(&sk, ct))[0];
            assert_eq!(got, *w);
        }
    }

    #[test]
    fn batch_cost_is_flat() {
        // The structural claim behind Figure 6: evaluating 1 sample and
        // evaluating `slots` samples is the same number of HE operations.
        // We verify by checking the ciphertext count is independent of the
        // batch size.
        let bfv = Bfv::new(Params::toy());
        let mut rng = StdRng::seed_from_u64(11);
        let sk = bfv.keygen(&mut rng);
        let one = encrypt_batch(&bfv, &sk, &[vec![1, 2, 3, 4]], &mut rng);
        let many = encrypt_batch(&bfv, &sk, &vec![vec![1, 2, 3, 4]; 200], &mut rng);
        assert_eq!(one.len(), many.len(), "ciphertexts per batch are fixed");
    }
}
