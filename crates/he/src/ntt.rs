//! Negacyclic number-theoretic transforms and modular utilities.

/// Modular multiplication via 128-bit intermediate.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Modular exponentiation.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller-Rabin for `u64` (the standard 12-base set).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the smallest prime `p >= lo` with `p ≡ 1 (mod modulus_step)`.
pub fn find_ntt_prime(lo: u64, modulus_step: u64) -> u64 {
    let mut candidate = lo.div_ceil(modulus_step) * modulus_step + 1;
    while !is_prime(candidate) {
        candidate += modulus_step;
    }
    candidate
}

/// Finds a primitive `order`-th root of unity modulo prime `p`
/// (`order` must divide `p - 1`).
///
/// # Panics
///
/// Panics if `order` does not divide `p - 1`.
pub fn primitive_root(order: u64, p: u64) -> u64 {
    assert_eq!((p - 1) % order, 0, "order must divide p-1");
    let cofactor = (p - 1) / order;
    // Try small candidates; check x^(order/q) != 1 for prime factors q of
    // order. Since order is a power of two here, only q = 2 matters.
    for x in 2..p {
        let w = pow_mod(x, cofactor, p);
        if w != 1 && pow_mod(w, order / 2, p) != 1 {
            return w;
        }
    }
    unreachable!("no primitive root found");
}

/// Precomputed tables for the negacyclic NTT of length `n` modulo `p`.
///
/// Forward/inverse transforms implement multiplication in
/// `Z_p[x]/(x^n + 1)` via the ψ-twisted cyclic NTT.
#[derive(Clone, Debug)]
pub struct NttTable {
    n: usize,
    p: u64,
    /// ψ^i (2n-th root powers) in bit-reversed order for the forward pass.
    psi_pows: Vec<u64>,
    /// ψ^{-i} likewise for the inverse pass.
    psi_inv_pows: Vec<u64>,
    n_inv: u64,
}

impl NttTable {
    /// Builds tables for length `n` (a power of two) modulo prime `p`
    /// with `p ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are incompatible.
    pub fn new(n: usize, p: u64) -> NttTable {
        assert!(n.is_power_of_two(), "NTT length must be a power of two");
        assert_eq!((p - 1) % (2 * n as u64), 0, "p must be 1 mod 2n");
        let psi = primitive_root(2 * n as u64, p);
        let psi_inv = pow_mod(psi, p - 2, p);
        let log_n = n.trailing_zeros();
        let bitrev = |i: usize| (i as u64).reverse_bits() >> (64 - log_n);
        let mut psi_pows = vec![0u64; n];
        let mut psi_inv_pows = vec![0u64; n];
        for i in 0..n {
            let r = bitrev(i) as usize;
            psi_pows[i] = pow_mod(psi, r as u64, p);
            psi_inv_pows[i] = pow_mod(psi_inv, r as u64, p);
        }
        NttTable {
            n,
            p,
            psi_pows,
            psi_inv_pows,
            n_inv: pow_mod(n as u64, p - 2, p),
        }
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty (never true; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The modulus.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// In-place forward negacyclic NTT (Cooley-Tukey, ψ-merged).
    pub fn forward(&self, a: &mut [u64]) {
        let (n, p) = (self.n, self.p);
        debug_assert_eq!(a.len(), n);
        let mut t = n;
        let mut m = 1;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_pows[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mul_mod(a[j + t], s, p);
                    a[j] = (u + v) % p;
                    a[j + t] = (u + p - v) % p;
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (Gentleman-Sande, ψ⁻¹-merged).
    pub fn inverse(&self, a: &mut [u64]) {
        let (n, p) = (self.n, self.p);
        debug_assert_eq!(a.len(), n);
        let mut t = 1;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.psi_inv_pows[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = (u + v) % p;
                    a[j + t] = mul_mod(u + p - v, s, p);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_mod(*x, self.n_inv, p);
        }
    }

    /// Negacyclic polynomial product (convenience; NTT-multiply-NTT⁻¹).
    pub fn negacyclic_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = mul_mod(*x, *y, self.p);
        }
        self.inverse(&mut fa);
        fa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality() {
        assert!(is_prime(2));
        assert!(is_prime(40961));
        assert!(is_prime(0xFFFF_FFFF_FFFF_FFC5)); // largest u64 prime
        assert!(!is_prime(40963));
        assert!(!is_prime(1));
        assert!(!is_prime(3_215_031_751)); // strong pseudoprime to bases 2,3,5,7
    }

    #[test]
    fn ntt_prime_search() {
        let p = find_ntt_prime(1 << 50, 4096);
        assert!(is_prime(p));
        assert_eq!((p - 1) % 4096, 0);
        assert!(p >= 1 << 50);
    }

    #[test]
    fn roots_of_unity() {
        let p = find_ntt_prime(1 << 20, 2048);
        let w = primitive_root(2048, p);
        assert_eq!(pow_mod(w, 2048, p), 1);
        assert_ne!(pow_mod(w, 1024, p), 1);
    }

    #[test]
    fn ntt_roundtrip() {
        let p = find_ntt_prime(1 << 30, 2 * 256);
        let table = NttTable::new(256, p);
        let original: Vec<u64> = (0..256u64).map(|i| (i * 37 + 11) % p).collect();
        let mut a = original.clone();
        table.forward(&mut a);
        assert_ne!(a, original);
        table.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn negacyclic_multiplication_matches_schoolbook() {
        let n = 16;
        let p = find_ntt_prime(1 << 20, 2 * n as u64);
        let table = NttTable::new(n, p);
        let a: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| 2 * i + 3).collect();
        // Schoolbook negacyclic product.
        let mut want = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let prod = mul_mod(ai, bj, p);
                let k = i + j;
                if k < n {
                    want[k] = (want[k] + prod) % p;
                } else {
                    want[k - n] = (want[k - n] + p - prod) % p;
                }
            }
        }
        assert_eq!(table.negacyclic_mul(&a, &b), want);
    }

    #[test]
    fn x_times_x_n_minus_1_wraps_negatively() {
        // x^(n-1) * x = x^n = -1 in the negacyclic ring.
        let n = 8;
        let p = find_ntt_prime(1 << 16, 2 * n as u64);
        let table = NttTable::new(n, p);
        let mut x = vec![0u64; n];
        x[1] = 1;
        let mut xn1 = vec![0u64; n];
        xn1[n - 1] = 1;
        let prod = table.negacyclic_mul(&x, &xn1);
        let mut want = vec![0u64; n];
        want[0] = p - 1; // -1
        assert_eq!(prod, want);
    }
}
