//! A compact secret-key BFV scheme (Brakerski/Fan–Vercauteren) with SIMD
//! batching — the cryptographic substrate CryptoNets builds on.
//!
//! Design choices for this baseline role:
//!
//! * Secret-key encryption suffices (the client encrypts its own data and
//!   decrypts its own result; no third-party encrypts).
//! * Exact tensor products for ciphertext multiplication are computed
//!   schoolbook over `i128` (parameters keep `n·(q/2)² < 2^123`), avoiding
//!   an RNS tower; this is slow but exact, and speed of the baseline is
//!   modeled separately (see `cryptonets`).
//! * Relinearization uses base-`2^16` digit decomposition keys.

use rand::Rng;

use crate::ntt::mul_mod;
use crate::Params;

/// A plaintext polynomial (coefficients mod `t`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plaintext(pub Vec<u64>);

/// A BFV ciphertext `(c0, c1)` with coefficients mod `q`.
#[derive(Clone, Debug)]
pub struct Ciphertext {
    pub(crate) c0: Vec<u64>,
    pub(crate) c1: Vec<u64>,
}

/// The ternary secret key.
#[derive(Clone, Debug)]
pub struct SecretKey {
    s: Vec<u64>,
}

/// Relinearization keys: encryptions of `2^{16·i}·s²`.
#[derive(Clone, Debug)]
pub struct EvalKey {
    digits: Vec<(Vec<u64>, Vec<u64>)>, // (b_i, a_i)
}

/// The scheme context.
#[derive(Clone, Debug)]
pub struct Bfv {
    params: Params,
}

impl Bfv {
    /// Creates a context.
    pub fn new(params: Params) -> Bfv {
        Bfv { params }
    }

    /// The parameter set.
    pub fn params(&self) -> &Params {
        &self.params
    }

    fn sample_ternary<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        let q = self.params.q;
        (0..self.params.n)
            .map(|_| match rng.gen_range(0..3u8) {
                0 => 0,
                1 => 1,
                _ => q - 1,
            })
            .collect()
    }

    fn sample_error<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        // Centered binomial with support [-4, 4].
        let q = self.params.q;
        (0..self.params.n)
            .map(|_| {
                let x: i64 = (0..8).map(|_| i64::from(rng.gen::<bool>())).sum::<i64>() - 4;
                if x >= 0 {
                    x as u64
                } else {
                    q - (-x) as u64
                }
            })
            .collect()
    }

    fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        (0..self.params.n)
            .map(|_| rng.gen_range(0..self.params.q))
            .collect()
    }

    fn add_poly(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x + y) % self.params.q)
            .collect()
    }

    fn sub_poly(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let q = self.params.q;
        a.iter().zip(b).map(|(&x, &y)| (x + q - y) % q).collect()
    }

    fn mul_poly(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        self.params.ntt_q.negacyclic_mul(a, b)
    }

    /// Generates a secret key.
    pub fn keygen<R: Rng + ?Sized>(&self, rng: &mut R) -> SecretKey {
        SecretKey {
            s: self.sample_ternary(rng),
        }
    }

    /// Generates relinearization keys for `sk`.
    pub fn eval_keygen<R: Rng + ?Sized>(&self, sk: &SecretKey, rng: &mut R) -> EvalKey {
        let w = self.params.relin_base_log;
        let levels = (64 - self.params.q.leading_zeros()).div_ceil(w);
        let s2 = self.mul_poly(&sk.s, &sk.s);
        let mut digits = Vec::with_capacity(levels as usize);
        for i in 0..levels {
            let a = self.sample_uniform(rng);
            let e = self.sample_error(rng);
            let mut b = self.sub_poly(&e, &self.mul_poly(&a, &sk.s));
            // b += 2^{w i} * s²  (power may exceed u64 range boundaries;
            // reduce the scalar mod q first).
            let scalar = if w * i >= 64 {
                // 2^{wi} mod q via pow
                crate::ntt::pow_mod(2, u64::from(w * i), self.params.q)
            } else {
                (1u128 << (w * i)).rem_euclid(u128::from(self.params.q)) as u64
            };
            for (bc, s2c) in b.iter_mut().zip(&s2) {
                *bc = (*bc + mul_mod(scalar, *s2c, self.params.q)) % self.params.q;
            }
            digits.push((b, a));
        }
        EvalKey { digits }
    }

    /// SIMD-encodes per-slot values (length ≤ `n`; missing slots are zero).
    ///
    /// # Panics
    ///
    /// Panics if more values than slots are supplied.
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        assert!(values.len() <= self.params.n, "more values than slots");
        let mut slots: Vec<u64> = values.iter().map(|&v| v % self.params.t).collect();
        slots.resize(self.params.n, 0);
        self.params.ntt_t.inverse(&mut slots);
        Plaintext(slots)
    }

    /// Encodes signed per-slot values (centered representatives mod `t`).
    pub fn encode_signed(&self, values: &[i64]) -> Plaintext {
        let t = self.params.t as i64;
        let unsigned: Vec<u64> = values.iter().map(|&v| v.rem_euclid(t) as u64).collect();
        self.encode(&unsigned)
    }

    /// Decodes a plaintext back to slot values.
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        let mut slots = pt.0.clone();
        self.params.ntt_t.forward(&mut slots);
        slots
    }

    /// Decodes to centered signed representatives.
    pub fn decode_signed(&self, pt: &Plaintext) -> Vec<i64> {
        let t = self.params.t;
        self.decode(pt)
            .into_iter()
            .map(|v| {
                if v > t / 2 {
                    v as i64 - t as i64
                } else {
                    v as i64
                }
            })
            .collect()
    }

    /// Encrypts a plaintext.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        pt: &Plaintext,
        rng: &mut R,
    ) -> Ciphertext {
        let a = self.sample_uniform(rng);
        let e = self.sample_error(rng);
        let delta = self.params.delta();
        let mut c0 = self.sub_poly(&e, &self.mul_poly(&a, &sk.s));
        for (c, &m) in c0.iter_mut().zip(&pt.0) {
            *c = (*c + mul_mod(delta, m, self.params.q)) % self.params.q;
        }
        Ciphertext { c0, c1: a }
    }

    /// Decrypts a ciphertext.
    pub fn decrypt(&self, sk: &SecretKey, ct: &Ciphertext) -> Plaintext {
        let v = self.add_poly(&ct.c0, &self.mul_poly(&ct.c1, &sk.s));
        let (q, t) = (self.params.q, self.params.t);
        let coeffs = v
            .into_iter()
            .map(|c| {
                // round(t·c/q) mod t
                let scaled = (u128::from(c) * u128::from(t) + u128::from(q) / 2) / u128::from(q);
                (scaled % u128::from(t)) as u64
            })
            .collect();
        Plaintext(coeffs)
    }

    /// Homomorphic addition.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext {
            c0: self.add_poly(&a.c0, &b.c0),
            c1: self.add_poly(&a.c1, &b.c1),
        }
    }

    /// Adds a plaintext into a ciphertext.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let delta = self.params.delta();
        let mut c0 = a.c0.clone();
        for (c, &m) in c0.iter_mut().zip(&pt.0) {
            *c = (*c + mul_mod(delta, m, self.params.q)) % self.params.q;
        }
        Ciphertext {
            c0,
            c1: a.c1.clone(),
        }
    }

    /// Multiplies a ciphertext by a small signed scalar (applied to every
    /// slot) — the weight multiplication of CryptoNets-style layers.
    pub fn mul_plain_scalar(&self, a: &Ciphertext, w: i64) -> Ciphertext {
        let q = self.params.q;
        let scalar = w.rem_euclid(q as i64) as u64;
        let scale = |p: &[u64]| p.iter().map(|&c| mul_mod(c, scalar, q)).collect();
        Ciphertext {
            c0: scale(&a.c0),
            c1: scale(&a.c1),
        }
    }

    /// Ciphertext-ciphertext multiplication with relinearization.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, evk: &EvalKey) -> Ciphertext {
        let (d0, d1, d2) = self.tensor(a, b);
        self.relinearize(d0, d1, d2, evk)
    }

    /// Squares a ciphertext.
    pub fn square(&self, a: &Ciphertext, evk: &EvalKey) -> Ciphertext {
        self.mul(a, a, evk)
    }

    /// The exact scaled tensor product `(d0, d1, d2)`.
    fn tensor(&self, a: &Ciphertext, b: &Ciphertext) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let prod00 = self.exact_negacyclic(&a.c0, &b.c0);
        let prod01 = self.exact_negacyclic(&a.c0, &b.c1);
        let prod10 = self.exact_negacyclic(&a.c1, &b.c0);
        let prod11 = self.exact_negacyclic(&a.c1, &b.c1);
        let cross: Vec<i128> = prod01.iter().zip(&prod10).map(|(&x, &y)| x + y).collect();
        (
            self.scale_round(&prod00),
            self.scale_round(&cross),
            self.scale_round(&prod11),
        )
    }

    /// Exact negacyclic product over the integers with centered inputs.
    fn exact_negacyclic(&self, a: &[u64], b: &[u64]) -> Vec<i128> {
        let n = self.params.n;
        let q = self.params.q;
        let center = |x: u64| -> i128 {
            if x > q / 2 {
                i128::from(x) - i128::from(q)
            } else {
                i128::from(x)
            }
        };
        let ac: Vec<i128> = a.iter().map(|&x| center(x)).collect();
        let bc: Vec<i128> = b.iter().map(|&x| center(x)).collect();
        let mut out = vec![0i128; n];
        for (i, &av) in ac.iter().enumerate() {
            if av == 0 {
                continue;
            }
            for (j, &bv) in bc.iter().enumerate() {
                let k = i + j;
                if k < n {
                    out[k] += av * bv;
                } else {
                    out[k - n] -= av * bv;
                }
            }
        }
        out
    }

    /// `round(t·x/q) mod q` on centered values.
    fn scale_round(&self, poly: &[i128]) -> Vec<u64> {
        let q = i128::from(self.params.q);
        let t = i128::from(self.params.t);
        poly.iter()
            .map(|&x| {
                let num = x * t;
                let rounded = if num >= 0 {
                    (num + q / 2) / q
                } else {
                    (num - q / 2) / q
                };
                rounded.rem_euclid(q) as u64
            })
            .collect()
    }

    fn relinearize(&self, d0: Vec<u64>, d1: Vec<u64>, d2: Vec<u64>, evk: &EvalKey) -> Ciphertext {
        let w = self.params.relin_base_log;
        let mask = (1u64 << w) - 1;
        let mut c0 = d0;
        let mut c1 = d1;
        let mut remaining = d2;
        for (b_i, a_i) in &evk.digits {
            let digit: Vec<u64> = remaining.iter().map(|&c| c & mask).collect();
            for c in remaining.iter_mut() {
                *c >>= w;
            }
            c0 = self.add_poly(&c0, &self.mul_poly(&digit, b_i));
            c1 = self.add_poly(&c1, &self.mul_poly(&digit, a_i));
        }
        Ciphertext { c0, c1 }
    }

    /// Measures the remaining *invariant* noise budget in bits,
    /// `log2(Δ / (2·noise)) = log2(q / (2·t·noise))`; decryption fails
    /// when this reaches zero.
    pub fn noise_budget(&self, sk: &SecretKey, ct: &Ciphertext) -> f64 {
        let v = self.add_poly(&ct.c0, &self.mul_poly(&ct.c1, &sk.s));
        let pt = self.decrypt(sk, ct);
        let (q, t) = (self.params.q, self.params.t);
        let delta = self.params.delta();
        let mut max_noise = 0i128;
        for (&vc, &mc) in v.iter().zip(&pt.0) {
            let expected = i128::from(mul_mod(delta, mc, q));
            let mut noise = i128::from(vc) - expected;
            // center mod q
            noise = noise.rem_euclid(i128::from(q));
            if noise > i128::from(q / 2) {
                noise -= i128::from(q);
            }
            max_noise = max_noise.max(noise.abs());
        }
        if max_noise == 0 {
            return 64.0;
        }
        (q as f64 / (2.0 * t as f64 * max_noise as f64))
            .log2()
            .max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn setup() -> (Bfv, SecretKey, StdRng) {
        let bfv = Bfv::new(Params::toy());
        let mut rng = StdRng::seed_from_u64(42);
        let sk = bfv.keygen(&mut rng);
        (bfv, sk, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (bfv, sk, mut rng) = setup();
        let values: Vec<u64> = (0..256).map(|i| i * 7 % 1000).collect();
        let ct = bfv.encrypt(&sk, &bfv.encode(&values), &mut rng);
        assert_eq!(bfv.decode(&bfv.decrypt(&sk, &ct)), values);
        assert!(bfv.noise_budget(&sk, &ct) > 20.0);
    }

    #[test]
    fn homomorphic_addition() {
        let (bfv, sk, mut rng) = setup();
        let a = [5u64, 10, 100, 8000];
        let b = [3u64, 7, 50, 100];
        let ca = bfv.encrypt(&sk, &bfv.encode(&a), &mut rng);
        let cb = bfv.encrypt(&sk, &bfv.encode(&b), &mut rng);
        let sum = bfv.add(&ca, &cb);
        let out = bfv.decode(&bfv.decrypt(&sk, &sum));
        assert_eq!(&out[..4], &[8, 17, 150, 8100]);
    }

    #[test]
    fn plaintext_addition_and_scalar_multiplication() {
        let (bfv, sk, mut rng) = setup();
        let ca = bfv.encrypt(&sk, &bfv.encode(&[10, 20]), &mut rng);
        let with_plain = bfv.add_plain(&ca, &bfv.encode(&[1, 2]));
        let out = bfv.decode(&bfv.decrypt(&sk, &with_plain));
        assert_eq!(&out[..2], &[11, 22]);

        let tripled = bfv.mul_plain_scalar(&ca, 3);
        let out = bfv.decode(&bfv.decrypt(&sk, &tripled));
        assert_eq!(&out[..2], &[30, 60]);

        // Negative scalars wrap mod t in slot space.
        let negated = bfv.mul_plain_scalar(&ca, -1);
        let pt = bfv.decrypt(&sk, &negated);
        let signed = bfv.decode_signed(&pt);
        assert_eq!(&signed[..2], &[-10, -20]);
    }

    #[test]
    fn ciphertext_multiplication_slotwise() {
        let (bfv, sk, mut rng) = setup();
        let evk = bfv.eval_keygen(&sk, &mut rng);
        let a = [3u64, 5, 7, 11];
        let b = [2u64, 4, 6, 8];
        let ca = bfv.encrypt(&sk, &bfv.encode(&a), &mut rng);
        let cb = bfv.encrypt(&sk, &bfv.encode(&b), &mut rng);
        let prod = bfv.mul(&ca, &cb, &evk);
        assert!(bfv.noise_budget(&sk, &prod) > 1.0, "budget exhausted");
        let out = bfv.decode(&bfv.decrypt(&sk, &prod));
        assert_eq!(&out[..4], &[6, 20, 42, 88]);
    }

    #[test]
    fn squaring_matches_slot_squares() {
        let (bfv, sk, mut rng) = setup();
        let evk = bfv.eval_keygen(&sk, &mut rng);
        let vals = [1u64, 2, 3, 50, 90];
        let ct = bfv.encrypt(&sk, &bfv.encode(&vals), &mut rng);
        let sq = bfv.square(&ct, &evk);
        let out = bfv.decode(&bfv.decrypt(&sk, &sq));
        for (o, v) in out.iter().zip(&vals) {
            assert_eq!(*o, v * v);
        }
    }

    #[test]
    fn signed_encoding_roundtrip() {
        let (bfv, sk, mut rng) = setup();
        let vals = [-5i64, 17, -100, 0, 1000];
        let ct = bfv.encrypt(&sk, &bfv.encode_signed(&vals), &mut rng);
        let out = bfv.decode_signed(&bfv.decrypt(&sk, &ct));
        assert_eq!(&out[..5], &vals);
    }

    #[test]
    fn noise_grows_with_multiplication() {
        let (bfv, sk, mut rng) = setup();
        let evk = bfv.eval_keygen(&sk, &mut rng);
        let ct = bfv.encrypt(&sk, &bfv.encode(&[2, 3]), &mut rng);
        let fresh = bfv.noise_budget(&sk, &ct);
        let sq = bfv.square(&ct, &evk);
        let after = bfv.noise_budget(&sk, &sq);
        assert!(
            after < fresh - 5.0,
            "multiplication must consume budget: {fresh} -> {after}"
        );
    }

    #[test]
    fn batching_is_componentwise() {
        // The whole point of CryptoNets batching: one HE op acts on all
        // slots (samples) at once.
        let (bfv, sk, mut rng) = setup();
        let a: Vec<u64> = (0..256).map(|i| i % 90).collect();
        let b: Vec<u64> = (0..256).map(|i| (i * 3 + 1) % 90).collect();
        let ca = bfv.encrypt(&sk, &bfv.encode(&a), &mut rng);
        let cb = bfv.encrypt(&sk, &bfv.encode(&b), &mut rng);
        let sum = bfv.add(&ca, &cb);
        let out = bfv.decode(&bfv.decrypt(&sk, &sum));
        for i in 0..256 {
            assert_eq!(out[i], a[i] + b[i], "slot {i}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::Params;

    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn encrypt_decrypt_arbitrary_slots(seed in any::<u64>(), vals in proptest::collection::vec(0u64..8000, 1..64)) {
            let bfv = Bfv::new(Params::toy());
            let mut rng = StdRng::seed_from_u64(seed);
            let sk = bfv.keygen(&mut rng);
            let ct = bfv.encrypt(&sk, &bfv.encode(&vals), &mut rng);
            let out = bfv.decode(&bfv.decrypt(&sk, &ct));
            prop_assert_eq!(&out[..vals.len()], &vals[..]);
        }

        #[test]
        fn addition_is_slotwise_mod_t(seed in any::<u64>(), a in 0u64..8000, b in 0u64..8000) {
            let bfv = Bfv::new(Params::toy());
            let t = bfv.params().t;
            let mut rng = StdRng::seed_from_u64(seed);
            let sk = bfv.keygen(&mut rng);
            let ca = bfv.encrypt(&sk, &bfv.encode(&[a]), &mut rng);
            let cb = bfv.encrypt(&sk, &bfv.encode(&[b]), &mut rng);
            let sum = bfv.add(&ca, &cb);
            let out = bfv.decode(&bfv.decrypt(&sk, &sum));
            prop_assert_eq!(out[0], (a + b) % t);
        }

        #[test]
        fn scalar_multiplication_distributes(seed in any::<u64>(), a in 0u64..500, w in -7i64..8) {
            // keep |a*w| below t/2 so the signed decode is unambiguous
            let bfv = Bfv::new(Params::toy());
            let mut rng = StdRng::seed_from_u64(seed);
            let sk = bfv.keygen(&mut rng);
            let ct = bfv.encrypt(&sk, &bfv.encode(&[a]), &mut rng);
            let scaled = bfv.mul_plain_scalar(&ct, w);
            let out = bfv.decode_signed(&bfv.decrypt(&sk, &scaled));
            prop_assert_eq!(out[0], a as i64 * w);
        }
    }
}
