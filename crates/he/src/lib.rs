//! The CryptoNets baseline (paper §4.7, Table 6, Figure 6).
//!
//! DeepSecure's headline comparison is against Microsoft's CryptoNets
//! [Gilad-Bachrach et al., ICML'16], which evaluates networks under
//! leveled homomorphic encryption with SIMD batching and square
//! activations. To make the comparison concrete this crate implements a
//! compact BFV-style RLWE scheme from scratch:
//!
//! * [`ntt`] — negacyclic number-theoretic transforms over NTT-friendly
//!   64-bit primes (with a deterministic Miller-Rabin prime search).
//! * [`Bfv`] — secret-key BFV: encrypt/decrypt, ciphertext addition,
//!   plaintext multiplication, ciphertext-ciphertext multiplication with
//!   relinearization, and SIMD slot batching (the "process 8192 samples
//!   at once" mechanism that shapes Figure 6).
//! * [`cryptonets`] — a CryptoNets-style evaluation pipeline (scaled
//!   integer encoding, conv → square → FC) and the latency model used in
//!   the comparison figures.
//!
//! This is the *functional* baseline: it demonstrates the batching
//! economics (huge per-batch cost, thousands of samples amortized) and the
//! precision limits (degree-2 activations, small plaintext moduli) the
//! paper contrasts with GC. Absolute speed is not the point; the cost
//! model constants in `deepsecure-core::cost::cryptonets` carry the
//! paper's published numbers.
//!
//! # Example
//!
//! ```
//! use deepsecure_he::{Bfv, Params};
//! use rand::SeedableRng;
//!
//! let params = Params::toy();
//! let bfv = Bfv::new(params);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let sk = bfv.keygen(&mut rng);
//! let m = bfv.encode(&[1, 2, 3, 4]);
//! let ct = bfv.encrypt(&sk, &m, &mut rng);
//! let two = bfv.add(&ct, &ct);
//! let out = bfv.decode(&bfv.decrypt(&sk, &two));
//! assert_eq!(&out[..4], &[2, 4, 6, 8]);
//! ```

mod bfv;
pub mod cryptonets;
pub mod ntt;
mod params;

pub use bfv::{Bfv, Ciphertext, EvalKey, Plaintext, SecretKey};
pub use params::Params;
