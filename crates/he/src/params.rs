use crate::ntt::{find_ntt_prime, NttTable};

/// BFV parameter set: ring degree `n`, ciphertext modulus `q`, plaintext
/// modulus `t` (both NTT-friendly primes so coefficients and slots both
/// transform).
#[derive(Clone, Debug)]
pub struct Params {
    /// Ring degree (power of two); also the SIMD slot count.
    pub n: usize,
    /// Ciphertext modulus (prime, `≡ 1 mod 2n`).
    pub q: u64,
    /// Plaintext modulus (prime, `≡ 1 mod 2n`) — bounds the integer
    /// precision of encoded values, the "5–10 bit precision" limitation
    /// the paper cites for CryptoNets.
    pub t: u64,
    /// Relinearization decomposition base (log2).
    pub relin_base_log: u32,
    pub(crate) ntt_q: NttTable,
    pub(crate) ntt_t: NttTable,
}

impl Params {
    /// Builds a parameter set with `n = 2^log_n` and a `q_bits`-bit
    /// ciphertext modulus.
    ///
    /// # Panics
    ///
    /// Panics if no suitable primes exist in range (never happens for the
    /// supported `log_n ∈ [3, 14]`, `q_bits ∈ [30, 62]`).
    pub fn new(log_n: u32, q_bits: u32, t_bits: u32) -> Params {
        let n = 1usize << log_n;
        let step = 2 * n as u64;
        let q = find_ntt_prime(1u64 << q_bits, step);
        let t = find_ntt_prime(1u64 << t_bits, step);
        assert!(t < q, "plaintext modulus must be far below q");
        Params {
            n,
            q,
            t,
            relin_base_log: 16,
            ntt_q: NttTable::new(n, q),
            ntt_t: NttTable::new(n, t),
        }
    }

    /// A CryptoNets-scale parameter set: `n = 4096`, 55-bit `q`, ~13-bit
    /// `t` — one squaring level over scaled 8-bit data (the paper's "5–10
    /// bit precision" regime) and 4096 SIMD slots for batching. The 55-bit
    /// bound keeps exact tensor products inside `i128`
    /// (`n·(q/2)² < 2^123`).
    pub fn cryptonets() -> Params {
        Params::new(12, 55, 13)
    }

    /// A fast test-sized set (`n = 256`).
    pub fn toy() -> Params {
        Params::new(8, 55, 13)
    }

    /// Number of SIMD slots (= `n`).
    pub fn slots(&self) -> usize {
        self.n
    }

    /// `Δ = ⌊q / t⌋`, the plaintext scaling factor.
    pub fn delta(&self) -> u64 {
        self.q / self.t
    }
}

#[cfg(test)]
mod tests {
    use crate::ntt::is_prime;

    use super::*;

    #[test]
    fn parameter_sets_are_consistent() {
        for p in [Params::toy(), Params::cryptonets()] {
            assert!(is_prime(p.q));
            assert!(is_prime(p.t));
            assert_eq!((p.q - 1) % (2 * p.n as u64), 0);
            assert_eq!((p.t - 1) % (2 * p.n as u64), 0);
            assert!(p.delta() > p.t, "need q >> t for one multiply level");
        }
    }

    #[test]
    fn cryptonets_has_thousands_of_slots() {
        assert_eq!(Params::cryptonets().slots(), 4096);
    }
}
