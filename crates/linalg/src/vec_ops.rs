//! Small vector helpers shared by the projection pipeline.

/// Dot product.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `x - y` element-wise.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// `x + s·y` element-wise (axpy).
pub fn axpy(x: &[f64], s: f64, y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    x.iter().zip(y).map(|(a, b)| a + s * b).collect()
}

/// Normalizes to unit length; returns `None` for (near-)zero vectors.
pub fn normalized(x: &[f64]) -> Option<Vec<f64>> {
    let n = norm2(x);
    if n < 1e-12 {
        return None;
    }
    Some(x.iter().map(|v| v / n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[1.0, 2.0]), vec![3.0, 5.0]);
    }

    #[test]
    fn normalize() {
        let v = normalized(&[3.0, 4.0]).unwrap();
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        assert!(normalized(&[0.0, 0.0]).is_none());
    }
}
