//! Dense `f64` linear algebra for DeepSecure's data pre-processing.
//!
//! Algorithm 1 (streaming dictionary projection) and the security analysis
//! of Proposition 3.1 need: matrix products, Cholesky solves for
//! `(DᵀD)⁻¹`, a thin QR / orthonormal basis for the projector
//! `W = D(DᵀD)⁻¹Dᵀ = UUᵀ`, and a symmetric eigensolver for the SVD
//! argument. All of it is implemented here from scratch; no BLAS.
//!
//! # Example
//!
//! ```
//! use deepsecure_linalg::Matrix;
//!
//! let d = Matrix::from_rows(&[
//!     vec![1.0, 0.0],
//!     vec![1.0, 1.0],
//!     vec![0.0, 2.0],
//! ]);
//! let w = d.projector();
//! // A projector is idempotent: W² = W.
//! let w2 = w.matmul(&w);
//! assert!(w.sub(&w2).frobenius_norm() < 1e-10);
//! ```

mod decomp;
mod matrix;
pub mod vec_ops;

pub use decomp::{cholesky, jacobi_eigen_sym, qr_thin, solve_spd, svd};
pub use matrix::Matrix;
