use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use deepsecure_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// assert_eq!(a.matmul(&b)[(0, 0)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds from column vectors.
    ///
    /// # Panics
    ///
    /// Panics on ragged input.
    pub fn from_columns(cols: &[Vec<f64>]) -> Matrix {
        let c = cols.len();
        let r = cols.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(r, c);
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(col.len(), r, "ragged columns");
            for (i, v) in col.iter().enumerate() {
                m[(i, j)] = *v;
            }
        }
        m
    }

    /// Builds element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` out.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// The orthogonal projector onto the column space:
    /// `W = Q Qᵀ` where `Q` is an orthonormal basis (Prop 3.1's `UUᵀ`).
    pub fn projector(&self) -> Matrix {
        let q = crate::qr_thin(self).0;
        q.matmul(&q.transpose())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        let c = Matrix::from_columns(&[vec![1.0, 4.0], vec![2.0, 5.0], vec![3.0, 6.0]]);
        assert_eq!(m, c);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = Matrix::from_fn(4, 3, |i, j| (i + j) as f64);
        let x = vec![1.0, -2.0, 0.5];
        let via_mat = m.matmul(&Matrix::from_columns(std::slice::from_ref(&x)));
        let direct = m.matvec(&x);
        for i in 0..4 {
            assert!((via_mat[(i, 0)] - direct[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn projector_is_idempotent_and_symmetric() {
        let d = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 1.0],
        ]);
        let w = d.projector();
        assert!(w.sub(&w.matmul(&w)).frobenius_norm() < 1e-10, "idempotent");
        assert!(w.sub(&w.transpose()).frobenius_norm() < 1e-12, "symmetric");
        // W fixes columns of D.
        let wd = w.matmul(&d);
        assert!(wd.sub(&d).frobenius_norm() < 1e-10, "fixes range");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
