//! Factorizations: Cholesky, thin QR (modified Gram-Schmidt), cyclic
//! Jacobi eigensolver and an SVD built on it.

use crate::Matrix;

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `A = L·Lᵀ`, or `None` if `A` is not
/// (numerically) positive definite.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky needs a square matrix");
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves the SPD system `A x = b` via Cholesky; `None` if `A` is not
/// positive definite.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let l = cholesky(a)?;
    let n = a.rows();
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Some(x)
}

/// Thin QR by modified Gram-Schmidt: `A = Q·R` with `Q` having orthonormal
/// columns. Rank-deficient columns are dropped from `Q` (and their `R` rows
/// zeroed), so `Q` spans exactly the column space.
pub fn qr_thin(a: &Matrix) -> (Matrix, Matrix) {
    let m = a.rows();
    let n = a.cols();
    let mut q_cols: Vec<Vec<f64>> = Vec::new();
    let mut r = Matrix::zeros(n, n);
    let tol = 1e-10 * a.frobenius_norm().max(1.0);
    for j in 0..n {
        let mut v = a.col(j);
        for (qi, qcol) in q_cols.iter().enumerate() {
            let dot: f64 = qcol.iter().zip(&v).map(|(x, y)| x * y).sum();
            r[(qi, j)] = dot;
            for (vk, qk) in v.iter_mut().zip(qcol) {
                *vk -= dot * qk;
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > tol && q_cols.len() < n.min(m) {
            r[(q_cols.len(), j)] = norm;
            q_cols.push(v.iter().map(|x| x / norm).collect());
        }
    }
    if q_cols.is_empty() {
        return (Matrix::zeros(m, 0), r);
    }
    (Matrix::from_columns(&q_cols), r)
}

/// Cyclic Jacobi eigensolver for a symmetric matrix: returns
/// `(eigenvalues, V)` with `A = V·diag(λ)·Vᵀ`, eigenvalues sorted
/// descending.
pub fn jacobi_eigen_sym(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigensolver needs a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    for _sweep in 0..64 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN eigenvalues"));
    let eigvals: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let cols: Vec<Vec<f64>> = pairs.iter().map(|p| v.col(p.1)).collect();
    (eigvals, Matrix::from_columns(&cols))
}

/// Singular value decomposition via the symmetric eigenproblem of `AᵀA`:
/// returns `(U, σ, V)` with `A ≈ U·diag(σ)·Vᵀ` (thin, rank-truncated at
/// numerical tolerance).
pub fn svd(a: &Matrix) -> (Matrix, Vec<f64>, Matrix) {
    let ata = a.transpose().matmul(a);
    let (eigvals, v) = jacobi_eigen_sym(&ata);
    let tol = 1e-10 * a.frobenius_norm().max(1.0);
    let mut sigmas = Vec::new();
    let mut u_cols = Vec::new();
    let mut v_cols = Vec::new();
    for (k, &lam) in eigvals.iter().enumerate() {
        let sigma = lam.max(0.0).sqrt();
        if sigma <= tol {
            continue;
        }
        let vk = v.col(k);
        let avk = a.matvec(&vk);
        u_cols.push(avk.iter().map(|x| x / sigma).collect());
        sigmas.push(sigma);
        v_cols.push(vk);
    }
    (
        Matrix::from_columns(&u_cols),
        sigmas,
        Matrix::from_columns(&v_cols),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // xorshift-based deterministic fill.
        let state = std::cell::Cell::new(seed | 1);
        Matrix::from_fn(rows, cols, |_, _| {
            let mut s = state.get();
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            state.set(s);
            (s % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn cholesky_reconstructs() {
        let b = random_matrix(4, 4, 3);
        let a = b.matmul(&b.transpose()).add(&Matrix::identity(4)); // SPD
        let l = cholesky(&a).unwrap();
        let llt = l.matmul(&l.transpose());
        assert!(a.sub(&llt).frobenius_norm() < 1e-9);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eig -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn solve_spd_solves() {
        let b = random_matrix(5, 5, 7);
        let a = b.matmul(&b.transpose()).add(&Matrix::identity(5));
        let x_true = vec![1.0, -2.0, 0.5, 3.0, -0.25];
        let rhs = a.matvec(&x_true);
        let x = solve_spd(&a, &rhs).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn qr_orthonormal_and_reconstructs() {
        let a = random_matrix(6, 4, 11);
        let (q, r) = qr_thin(&a);
        let qtq = q.transpose().matmul(&q);
        assert!(
            qtq.sub(&Matrix::identity(q.cols())).frobenius_norm() < 1e-9,
            "QᵀQ = I"
        );
        let qr = q.matmul(&r);
        assert!(a.sub(&qr).frobenius_norm() < 1e-9, "A = QR");
    }

    #[test]
    fn qr_handles_rank_deficiency() {
        // Third column is the sum of the first two.
        let mut a = random_matrix(5, 3, 13);
        for i in 0..5 {
            a[(i, 2)] = a[(i, 0)] + a[(i, 1)];
        }
        let (q, _) = qr_thin(&a);
        assert_eq!(q.cols(), 2, "rank-2 input yields 2 basis vectors");
    }

    #[test]
    fn jacobi_diagonalizes() {
        let b = random_matrix(6, 6, 17);
        let a = b.add(&b.transpose()); // symmetric
        let (vals, v) = jacobi_eigen_sym(&a);
        let mut lam = Matrix::zeros(6, 6);
        for (i, &l) in vals.iter().enumerate() {
            lam[(i, i)] = l;
        }
        let recon = v.matmul(&lam).matmul(&v.transpose());
        assert!(a.sub(&recon).frobenius_norm() < 1e-8);
        // Sorted descending.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_reconstructs() {
        let a = random_matrix(7, 4, 23);
        let (u, s, v) = svd(&a);
        let mut sig = Matrix::zeros(s.len(), s.len());
        for (i, &x) in s.iter().enumerate() {
            sig[(i, i)] = x;
        }
        let recon = u.matmul(&sig).matmul(&v.transpose());
        assert!(a.sub(&recon).frobenius_norm() < 1e-8);
    }

    #[test]
    fn svd_projector_equals_qr_projector() {
        // The heart of Prop 3.1: W = UUᵀ regardless of how the basis is
        // computed.
        let a = random_matrix(6, 3, 31);
        let (u, _, _) = svd(&a);
        let w_svd = u.matmul(&u.transpose());
        let w_qr = a.projector();
        assert!(w_svd.sub(&w_qr).frobenius_norm() < 1e-8);
    }
}
