use std::sync::RwLock;

use deepsecure_circuit::{Circuit, GateKind, CONST_0, CONST_1};
use deepsecure_crypto::{Block, FixedKeyHash};
use workpool::ThreadPool;

use crate::par::{Par, PAR_GRAIN};

/// The evaluation state machine (the server/Bob role in DeepSecure).
///
/// Receives garbled tables and active input labels, walks the netlist
/// (already topologically sorted) decrypting one half-gates pair per
/// non-XOR gate, and decodes outputs with the point-and-permute bits.
/// Register labels carry across cycles exactly like the garbler's.
pub struct Evaluator<'c> {
    circuit: &'c Circuit,
    hash: FixedKeyHash,
    /// Active labels of register q wires for the next cycle.
    reg_labels: Vec<Block>,
    /// Whether real register labels were ever installed. Starts `false` for
    /// sequential circuits: evaluating before [`Evaluator::set_initial_registers`]
    /// would silently walk the netlist with all-zero register labels.
    regs_initialized: bool,
    /// Mirrors the garbler's monotone per-gate tweak counter.
    tweak: u64,
    /// Constant-wire active labels (learned from the first cycle's stream —
    /// they ride along with the garbler input labels).
    const_labels: Option<[Block; 2]>,
    /// Level-parallel scheduling state; `None` evaluates sequentially.
    par: Option<Par>,
}

impl std::fmt::Debug for Evaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("tweak", &self.tweak)
            .finish_non_exhaustive()
    }
}

impl<'c> Evaluator<'c> {
    /// Creates an evaluator for the circuit.
    pub fn new(circuit: &'c Circuit) -> Evaluator<'c> {
        Evaluator {
            circuit,
            hash: FixedKeyHash::new(),
            reg_labels: vec![Block::ZERO; circuit.registers().len()],
            // Combinational circuits have no register state to install.
            regs_initialized: !circuit.is_sequential(),
            tweak: 0,
            const_labels: None,
            par: None,
        }
    }

    /// Attaches a thread pool: each feed's unblocked gates are evaluated
    /// level-parallel across the pool's workers, with labels committed in
    /// gate order — the walk consumes exactly the same rows and produces
    /// exactly the same labels as the sequential one (see
    /// [`crate::Garbler::with_pool`]). A sequential pool keeps the plain
    /// inline walk.
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.par = Par::for_circuit(self.circuit, pool);
        self
    }

    /// Installs the initial register labels (sent by the garbler before the
    /// first cycle).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn set_initial_registers(&mut self, labels: Vec<Block>) {
        assert_eq!(labels.len(), self.reg_labels.len(), "register arity");
        self.reg_labels = labels;
        self.regs_initialized = true;
    }

    /// Installs the constant-wire active labels (the garbler sends them
    /// once, before the first cycle's tables).
    pub fn set_constant_labels(&mut self, const0: Block, const1: Block) {
        self.const_labels = Some([const0, const1]);
    }

    /// Evaluates one cycle and returns the decoded output bits.
    ///
    /// `garbler_labels` are the active labels of the garbler's inputs (sent
    /// directly); `evaluator_labels` are this party's own input labels
    /// (obtained via OT).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, if constant labels were never provided
    /// while the circuit references constants (see
    /// [`Evaluator::set_constant_labels`]), or if the circuit is sequential
    /// and [`Evaluator::set_initial_registers`] was never called —
    /// evaluating with placeholder labels would silently produce garbage
    /// bits instead of an error.
    pub fn eval_cycle(
        &mut self,
        tables: &[Block],
        garbler_labels: &[Block],
        evaluator_labels: &[Block],
        output_decode: &[bool],
    ) -> Vec<bool> {
        let mut cycle = self.begin_cycle(garbler_labels, evaluator_labels);
        cycle.feed(tables);
        cycle.finish(output_decode)
    }

    /// Starts evaluating one cycle incrementally: input labels install now,
    /// garbled tables arrive later through [`CycleEval::feed`] — the
    /// constant-memory consumer half of the streaming pipeline. Gate walk
    /// progress is bounded only by how much material has been fed, so the
    /// evaluator works while later chunks are still in flight.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, missing constant labels (when the circuit
    /// references constants), or a sequential circuit whose initial
    /// register labels were never installed — same contract as
    /// [`Evaluator::eval_cycle`].
    pub fn begin_cycle(
        &mut self,
        garbler_labels: &[Block],
        evaluator_labels: &[Block],
    ) -> CycleEval<'_, 'c> {
        let c = self.circuit;
        assert_eq!(
            garbler_labels.len(),
            c.garbler_inputs().len(),
            "garbler label arity"
        );
        assert_eq!(
            evaluator_labels.len(),
            c.evaluator_inputs().len(),
            "evaluator label arity"
        );
        assert!(
            self.regs_initialized,
            "register labels never provided for a sequential circuit: call \
             Evaluator::set_initial_registers before eval_cycle"
        );
        let mut labels: Vec<Block> = vec![Block::ZERO; c.wire_count()];
        match self.const_labels {
            Some([c0, c1]) => {
                labels[CONST_0.index()] = c0;
                labels[CONST_1.index()] = c1;
            }
            None => assert!(
                !c.references_constants(),
                "constant labels never provided but the circuit references \
                 constants: call Evaluator::set_constant_labels before eval_cycle"
            ),
        }
        for (w, &l) in c.garbler_inputs().iter().zip(garbler_labels) {
            labels[w.index()] = l;
        }
        for (w, &l) in c.evaluator_inputs().iter().zip(evaluator_labels) {
            labels[w.index()] = l;
        }
        for (r, &l) in c.registers().iter().zip(&self.reg_labels) {
            labels[r.q.index()] = l;
        }
        CycleEval {
            evaluator: self,
            labels: RwLock::new(labels),
            next_gate: 0,
            pending: Vec::new(),
        }
    }
}

/// One clock cycle being evaluated incrementally (the streaming consumer).
///
/// Created by [`Evaluator::begin_cycle`]. Each [`CycleEval::feed`] hands
/// over the next table rows in stream order and immediately evaluates
/// every gate they unblock; [`CycleEval::finish`] checks the stream
/// consumed exactly, latches registers, and decodes the outputs.
///
/// Rows are consumed straight from the fed slice — no copy of the stream
/// is ever made, so the buffered [`Evaluator::eval_cycle`] wrapper stays
/// zero-copy and a streamed run buffers at most one orphan row between
/// feeds (a feed may split a gate's two rows across calls).
pub struct CycleEval<'e, 'c> {
    evaluator: &'e mut Evaluator<'c>,
    /// Active labels of this cycle's wires (grows gate by gate). Behind a
    /// lock only for the level-parallel path (workers read settled labels,
    /// the caller commits a level's outputs between barriers); the
    /// sequential walk goes through `get_mut` and never locks.
    labels: RwLock<Vec<Block>>,
    /// Next gate to evaluate.
    next_gate: usize,
    /// Fed-but-unconsumed table rows: at most one orphan row while gates
    /// remain; only an oversupplied stream (an error [`CycleEval::finish`]
    /// reports) accumulates more.
    pending: Vec<Block>,
}

impl std::fmt::Debug for CycleEval<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleEval")
            .field("next_gate", &self.next_gate)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl CycleEval<'_, '_> {
    /// Feeds the next table rows (in stream order) and evaluates as far as
    /// the material allows: every free gate, plus each non-free gate whose
    /// two rows are available.
    pub fn feed(&mut self, tables: &[Block]) {
        if let Some(par) = self.evaluator.par.clone() {
            self.feed_parallel(tables, &par);
            return;
        }
        let mut pos = 0usize;
        let ev = &mut *self.evaluator;
        let c = ev.circuit;
        let gates = c.gates();
        let labels = self.labels.get_mut().unwrap_or_else(|p| p.into_inner());
        while self.next_gate < gates.len() {
            let gate = &gates[self.next_gate];
            let a = labels[gate.a.index()];
            let b = labels[gate.b.index()];
            let out = match gate.kind {
                GateKind::Xor | GateKind::Xnor => a ^ b,
                GateKind::Not | GateKind::Buf => a,
                kind => {
                    // Half-gates evaluation; input/output inversions are
                    // garbler-side bookkeeping, invisible here.
                    let _ = kind;
                    // Assemble the row pair from the orphan (if any) plus
                    // the fed slice; rows are never copied ahead of use.
                    debug_assert!(self.pending.len() <= 1, "orphan invariant");
                    let avail = self.pending.len() + (tables.len() - pos);
                    if avail < 2 {
                        // Blocked on material still in flight.
                        break;
                    }
                    let (table_g, table_e) = if let Some(&orphan) = self.pending.first() {
                        self.pending.clear();
                        pos += 1;
                        (orphan, tables[pos - 1])
                    } else {
                        pos += 2;
                        (tables[pos - 2], tables[pos - 1])
                    };
                    let t_g = ev.tweak;
                    let t_e = ev.tweak + 1;
                    ev.tweak += 2;
                    // Both half-gate hashes in one batched AES pass.
                    let [mut w_g, mut w_e] = ev.hash.hash2([a, b], [t_g, t_e]);
                    if a.color() {
                        w_g ^= table_g;
                    }
                    if b.color() {
                        w_e ^= table_e ^ a;
                    }
                    w_g ^ w_e
                }
            };
            labels[gate.out.index()] = out;
            self.next_gate += 1;
        }
        // Stash the unconsumed tail: at most one row while gates remain;
        // everything left over (an error) once the gate walk is complete.
        self.pending.extend_from_slice(&tables[pos..]);
    }

    /// The level-parallel feed: works out how far the fed material lets the
    /// gate walk advance (every free gate up to — but not past — the first
    /// non-free gate whose two rows are missing), groups that range by
    /// dependency level, and evaluates each level across the pool. Rows are
    /// addressed by non-free ordinal straight out of `pending ++ tables`,
    /// and the leftover stash is exactly what the sequential walk keeps.
    fn feed_parallel(&mut self, tables: &[Block], par: &Par) {
        let ev = &*self.evaluator;
        let gates = ev.circuit.gates();
        let lv = &*par.levels;
        let start = self.next_gate;
        if start == gates.len() {
            // Gate walk already complete: any extra rows are an oversupply
            // for finish() to report.
            self.pending.extend_from_slice(tables);
            return;
        }
        debug_assert!(self.pending.len() <= 1, "orphan invariant");
        let avail = self.pending.len() + tables.len();
        let funded = avail / 2;
        let base_nf = lv.nonfree_before(start) as usize;
        // Stop at the first non-free gate the material cannot fund (free
        // gates before it still evaluate), or run to the end.
        let end = lv.nth_nonfree_at(start, funded + 1).unwrap_or(gates.len());
        let done_nf = lv.nonfree_before(end) as usize - base_nf;
        let hash = ev.hash.clone();
        let cycle_tweak_base = ev.tweak - 2 * base_nf as u64;
        let (order, spans) = lv.order_range(start..end);
        {
            let labels = &self.labels;
            let pending = &self.pending;
            let (order, spans) = (&order, &spans);
            par.pool.waves(
                spans.len(),
                PAR_GRAIN,
                |w| spans[w].len(),
                |w, range| {
                    let span = &order[spans[w].clone()];
                    let labels = labels.read().unwrap_or_else(|p| p.into_inner());
                    span[range]
                        .iter()
                        .map(|&gi| {
                            let gi = gi as usize;
                            let gate = &gates[gi];
                            let a = labels[gate.a.index()];
                            let b = labels[gate.b.index()];
                            match gate.kind {
                                GateKind::Xor | GateKind::Xnor => a ^ b,
                                GateKind::Not | GateKind::Buf => a,
                                _ => {
                                    let k = lv.nonfree_before(gi) as usize - base_nf;
                                    let row = |j: usize| {
                                        if j < pending.len() {
                                            pending[j]
                                        } else {
                                            tables[j - pending.len()]
                                        }
                                    };
                                    let (table_g, table_e) = (row(2 * k), row(2 * k + 1));
                                    let t_g =
                                        cycle_tweak_base + 2 * u64::from(lv.nonfree_before(gi));
                                    let [mut w_g, mut w_e] = hash.hash2([a, b], [t_g, t_g + 1]);
                                    if a.color() {
                                        w_g ^= table_g;
                                    }
                                    if b.color() {
                                        w_e ^= table_e ^ a;
                                    }
                                    w_g ^ w_e
                                }
                            }
                        })
                        .collect::<Vec<Block>>()
                },
                |w, parts| {
                    let mut labels = labels.write().unwrap_or_else(|p| p.into_inner());
                    let span_start = spans[w].start;
                    for (task_start, outs) in parts {
                        for (k, out) in outs.into_iter().enumerate() {
                            let gi = order[span_start + task_start + k] as usize;
                            labels[gates[gi].out.index()] = out;
                        }
                    }
                },
            );
        }
        let used_rows = 2 * done_nf;
        self.next_gate = end;
        self.evaluator.tweak += 2 * done_nf as u64;
        if used_rows <= self.pending.len() {
            // Nothing funded (used_rows == 0): keep the orphan, stash the
            // fed tail — identical to the sequential blocked case.
            self.pending.extend_from_slice(tables);
        } else {
            let from_tables = used_rows - self.pending.len();
            self.pending.clear();
            self.pending.extend_from_slice(&tables[from_tables..]);
        }
    }

    /// Whether every gate of the cycle has been evaluated.
    pub fn is_complete(&self) -> bool {
        self.next_gate == self.evaluator.circuit.gates().len()
    }

    /// Closes the cycle: verifies the table stream was consumed exactly,
    /// latches register labels forward, and decodes the output bits.
    ///
    /// # Panics
    ///
    /// Panics on decode-arity mismatch or a table stream length mismatch
    /// (truncated or oversized material).
    pub fn finish(mut self, output_decode: &[bool]) -> Vec<bool> {
        // A circuit whose cycle carries no material (all-free gates) is
        // never fed; an empty feed walks its gates here.
        self.feed(&[]);
        let ev = self.evaluator;
        let c = ev.circuit;
        assert_eq!(output_decode.len(), c.outputs().len(), "decode arity");
        assert!(
            self.next_gate == c.gates().len(),
            "table stream length mismatch (truncated material): \
             {} of {} gates evaluated",
            self.next_gate,
            c.gates().len()
        );
        assert!(
            self.pending.is_empty(),
            "table stream length mismatch: {} unconsumed rows",
            self.pending.len()
        );
        let labels = self.labels.into_inner().unwrap_or_else(|p| p.into_inner());
        for (slot, r) in ev.reg_labels.iter_mut().zip(c.registers()) {
            *slot = labels[r.d.index()];
        }
        c.outputs()
            .iter()
            .zip(output_decode)
            .map(|(w, &d)| labels[w.index()].color() ^ d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use deepsecure_circuit::Builder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::Garbler;

    use super::*;

    #[test]
    fn evaluator_never_sees_delta_structure() {
        // The two possible active labels the evaluator could hold for a
        // wire differ by Δ, but each individual label is uniform; check
        // at least that evaluating twice with re-garbled material yields
        // unrelated intermediate labels.
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        b.output(z);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(9);
        let mut g1 = Garbler::new(&c, &mut rng);
        let cy1 = g1.garble_cycle(&mut rng);
        let mut g2 = Garbler::new(&c, &mut rng);
        let cy2 = g2.garble_cycle(&mut rng);
        assert_ne!(
            cy1.garbler_input_labels[0].0, cy2.garbler_input_labels[0].0,
            "independent sessions, independent labels"
        );
    }

    #[test]
    #[should_panic(expected = "constant labels never provided")]
    fn missing_constant_labels_panics() {
        // Regression: this used to leave CONST_0/CONST_1 as Block::ZERO and
        // silently misevaluate.
        let mut b = Builder::new();
        let x = b.garbler_input();
        b.output(x);
        let one = b.const1();
        b.output(one);
        let c = b.finish();
        assert!(c.references_constants());
        let mut rng = StdRng::seed_from_u64(21);
        let mut g = Garbler::new(&c, &mut rng);
        let cy = g.garble_cycle(&mut rng);
        let mut e = Evaluator::new(&c);
        let gl = cy.garbler_active(&[true]);
        let _ = e.eval_cycle(&cy.tables, &gl, &[], &cy.output_decode);
    }

    #[test]
    fn missing_constant_labels_ok_when_unreferenced() {
        // A circuit that never reads the constant wires must keep working
        // without set_constant_labels.
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        b.output(z);
        let c = b.finish();
        assert!(!c.references_constants());
        let mut rng = StdRng::seed_from_u64(22);
        let mut g = Garbler::new(&c, &mut rng);
        let cy = g.garble_cycle(&mut rng);
        let mut e = Evaluator::new(&c);
        let gl = cy.garbler_active(&[true]);
        let el = cy.evaluator_active(&[true]);
        let out = e.eval_cycle(&cy.tables, &gl, &el, &cy.output_decode);
        assert_eq!(out, vec![true]);
    }

    #[test]
    #[should_panic(expected = "register labels never provided")]
    fn missing_initial_registers_panics() {
        // Regression: this used to evaluate with all-zero register labels
        // and produce wrong bits instead of an error.
        let mut b = Builder::new();
        let x = b.garbler_input();
        let q = b.register(false);
        let d = b.and(q, x);
        b.connect_register(q, d);
        b.output(d);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(23);
        let mut g = Garbler::new(&c, &mut rng);
        let cy = g.garble_cycle(&mut rng);
        let mut e = Evaluator::new(&c);
        // Deliberately skip set_initial_registers.
        let gl = cy.garbler_active(&[true]);
        let _ = e.eval_cycle(&cy.tables, &gl, &[], &cy.output_decode);
    }

    #[test]
    #[should_panic(expected = "table stream length")]
    fn truncated_tables_detected() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        b.output(z);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(10);
        let mut g = Garbler::new(&c, &mut rng);
        let cy = g.garble_cycle(&mut rng);
        let mut e = Evaluator::new(&c);
        let gl = cy.garbler_active(&[true]);
        let el = cy.evaluator_active(&[true]);
        // Drop one table row.
        let _ = e.eval_cycle(&cy.tables[..1], &gl, &el, &cy.output_decode);
    }
}
