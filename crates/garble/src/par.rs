//! Shared state for level-parallel garbling and evaluation.

use std::sync::Arc;

use deepsecure_circuit::passes::{levelize, Levels};
use deepsecure_circuit::Circuit;
use workpool::ThreadPool;

/// Minimum gates per work-stealing task. An AND gate is one batched AES
/// pass (~100ns); below a handful of gates the deque handoff dominates.
pub(crate) const PAR_GRAIN: usize = 16;

/// A thread pool plus the circuit's dependency levels, attached to a
/// [`crate::Garbler`] or [`crate::Evaluator`] by `with_pool`. Cheap to
/// clone (the levels are shared), which lets cycle handles detach it from
/// the borrowed state machine while a chunk is in flight.
#[derive(Debug, Clone)]
pub(crate) struct Par {
    pub pool: ThreadPool,
    pub levels: Arc<Levels>,
}

impl Par {
    /// Levelizes `circuit` for `pool`; `None` for a sequential pool, so
    /// single-threaded users never pay the levelization pass or the
    /// scheduling overhead.
    pub fn for_circuit(circuit: &Circuit, pool: ThreadPool) -> Option<Par> {
        pool.is_parallel().then(|| Par {
            pool,
            levels: Arc::new(levelize(circuit)),
        })
    }
}
