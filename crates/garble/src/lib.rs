//! The garbling engine: Free-XOR + point-and-permute + half-gates over the
//! fixed-key AES hash — the optimization stack of §2.3.
//!
//! * XOR/XNOR/NOT/BUF gates are free (label XOR, no table, no bytes).
//! * Every non-XOR two-input gate is normalized to
//!   `((a⊕α) ∧ (b⊕β)) ⊕ γ` and garbled with half-gates — exactly two
//!   128-bit ciphertexts, which is where the paper's
//!   `α = N_non-XOR × 2 × 128 bit` communication formula (Table 2) comes
//!   from.
//! * Sequential circuits garble cycle by cycle with register labels carried
//!   across cycles (TinyGarble-style, §3.5): the material for one cycle is
//!   constant-size no matter how many cycles run.
//!
//! [`Garbler`] and [`Evaluator`] are transport-agnostic state machines;
//! `deepsecure-core` wires them to channels and OT. [`execute_locally`]
//! runs both in-process for tests and calibration.
//!
//! # Example
//!
//! ```
//! use deepsecure_circuit::Builder;
//! use deepsecure_garble::execute_locally;
//! use rand::SeedableRng;
//!
//! let mut b = Builder::new();
//! let x = b.garbler_input();
//! let y = b.evaluator_input();
//! let z = b.and(x, y);
//! b.output(z);
//! let c = b.finish();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let run = execute_locally(&c, &[true], &[true], 1, &mut rng);
//! assert_eq!(run.outputs, vec![true]);
//! assert_eq!(run.material_bytes, 32, "one AND = two ciphertexts");
//! ```

mod evaluator;
mod garbler;

pub use evaluator::Evaluator;
pub use garbler::{GarbledCycle, Garbler};

use deepsecure_circuit::Circuit;
use rand::Rng;

/// Result of [`execute_locally`].
#[derive(Debug, Clone)]
pub struct LocalRun {
    /// Decoded output bits of the final cycle.
    pub outputs: Vec<bool>,
    /// Total garbled-table bytes produced (what would cross the network).
    pub material_bytes: u64,
    /// Decoded outputs of every cycle.
    pub per_cycle_outputs: Vec<Vec<bool>>,
}

/// Garbles and evaluates a circuit in-process, feeding the same inputs
/// every cycle. The reference for correctness tests and the β-coefficient
/// calibration of §4.3.
///
/// # Panics
///
/// Panics if input lengths do not match the circuit.
pub fn execute_locally<R: Rng + ?Sized>(
    circuit: &Circuit,
    garbler_inputs: &[bool],
    evaluator_inputs: &[bool],
    cycles: usize,
    rng: &mut R,
) -> LocalRun {
    let mut garbler = Garbler::new(circuit, rng);
    let mut evaluator = Evaluator::new(circuit);
    evaluator.set_initial_registers(garbler.initial_register_labels());
    let mut material = 0u64;
    let mut per_cycle = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let cycle = garbler.garble_cycle(rng);
        material += (cycle.tables.len() * 16) as u64;
        evaluator.set_constant_labels(cycle.constant_labels[0], cycle.constant_labels[1]);
        let g_labels = cycle.garbler_active(garbler_inputs);
        let e_labels = cycle.evaluator_active(evaluator_inputs);
        let outputs =
            evaluator.eval_cycle(&cycle.tables, &g_labels, &e_labels, &cycle.output_decode);
        per_cycle.push(outputs);
    }
    LocalRun {
        outputs: per_cycle.last().cloned().unwrap_or_default(),
        material_bytes: material,
        per_cycle_outputs: per_cycle,
    }
}

#[cfg(test)]
mod tests {
    use deepsecure_circuit::{Builder, Circuit, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn exhaustive_check(circuit: &Circuit) {
        let ng = circuit.garbler_inputs().len();
        let ne = circuit.evaluator_inputs().len();
        let mut rng = StdRng::seed_from_u64(0xabc);
        for bits in 0..(1u32 << (ng + ne)) {
            let g: Vec<bool> = (0..ng).map(|i| (bits >> i) & 1 == 1).collect();
            let e: Vec<bool> = (0..ne).map(|i| (bits >> (ng + i)) & 1 == 1).collect();
            let run = execute_locally(circuit, &g, &e, 1, &mut rng);
            let want = circuit.eval(&g, &e);
            assert_eq!(run.outputs, want, "inputs g={g:?} e={e:?}");
        }
    }

    #[test]
    fn all_gate_kinds_garble_correctly() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let g1 = b.and(x, y);
        let g2 = b.or(x, y);
        let g3 = b.nand(x, y);
        let g4 = b.nor(x, y);
        let g5 = b.xor(x, y);
        let g6 = b.xnor(x, y);
        let g7 = b.not(x);
        for w in [g1, g2, g3, g4, g5, g6, g7] {
            b.output(w);
        }
        exhaustive_check(&b.finish());
    }

    #[test]
    fn constants_garble_correctly() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let one = b.const1();
        let zero = b.const0();
        let a = b.and(x, one);
        let o = b.or(x, zero);
        b.output(a);
        b.output(o);
        b.output(one);
        b.output(zero);
        exhaustive_check(&b.finish());
    }

    #[test]
    fn full_adder_exhaustive() {
        let mut b = Builder::new();
        let a = b.garbler_input();
        let cin = b.garbler_input();
        let x = b.evaluator_input();
        let t1 = b.xor(a, cin);
        let t2 = b.xor(x, cin);
        let t3 = b.and(t1, t2);
        let cout = b.xor(cin, t3);
        let sum = b.xor(t1, x);
        b.output(sum);
        b.output(cout);
        exhaustive_check(&b.finish());
    }

    #[test]
    fn sequential_accumulator_matches_simulator() {
        // acc' = acc + x (2-bit counter with evaluator-controlled step).
        let mut b = Builder::new();
        let x = b.evaluator_input();
        let q0 = b.register(false);
        let q1 = b.register(false);
        let d0 = b.xor(q0, x);
        let carry = b.and(q0, x);
        let d1 = b.xor(q1, carry);
        b.connect_register(q0, d0);
        b.connect_register(q1, d1);
        b.output(d0);
        b.output(d1);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(77);
        let run = execute_locally(&c, &[], &[true], 5, &mut rng);
        let mut sim = Simulator::new(&c);
        let mut last = Vec::new();
        for _ in 0..5 {
            last = sim.step(&[], &[true]);
        }
        assert_eq!(run.outputs, last, "after 5 increments");
        // Check every intermediate cycle too.
        let mut sim = Simulator::new(&c);
        for cyc in 0..5 {
            assert_eq!(
                run.per_cycle_outputs[cyc],
                sim.step(&[], &[true]),
                "cycle {cyc}"
            );
        }
    }

    #[test]
    fn registers_with_nonzero_init() {
        let mut b = Builder::new();
        let q = b.register(true);
        let n = b.not(q);
        b.connect_register(q, n);
        b.output(q);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(4);
        let run = execute_locally(&c, &[], &[], 3, &mut rng);
        assert_eq!(
            run.per_cycle_outputs,
            vec![vec![true], vec![false], vec![true]]
        );
    }

    #[test]
    fn material_size_counts_only_non_free_gates() {
        let mut b = Builder::new();
        let xs = b.garbler_inputs(4);
        let ys = b.evaluator_inputs(4);
        let mut outs = Vec::new();
        for (x, y) in xs.iter().zip(&ys) {
            outs.push(b.xor(*x, *y)); // free
        }
        let a = b.and(outs[0], outs[1]);
        let o = b.or(outs[2], outs[3]);
        b.output(a);
        b.output(o);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(3);
        let run = execute_locally(&c, &[true; 4], &[false; 4], 1, &mut rng);
        assert_eq!(run.material_bytes, 2 * 32, "2 non-XOR gates x 32 bytes");
    }

    #[test]
    fn random_circuits_match_simulator() {
        use rand::Rng as _;
        let mut meta_rng = StdRng::seed_from_u64(0x5eed);
        for trial in 0..30 {
            let mut b = Builder::new();
            let ng = meta_rng.gen_range(1..5);
            let ne = meta_rng.gen_range(1..5);
            let mut pool: Vec<_> = b.garbler_inputs(ng);
            pool.extend(b.evaluator_inputs(ne));
            for _ in 0..meta_rng.gen_range(5..40) {
                let a = pool[meta_rng.gen_range(0..pool.len())];
                let c = pool[meta_rng.gen_range(0..pool.len())];
                let w = match meta_rng.gen_range(0..7) {
                    0 => b.xor(a, c),
                    1 => b.and(a, c),
                    2 => b.or(a, c),
                    3 => b.xnor(a, c),
                    4 => b.nand(a, c),
                    5 => b.nor(a, c),
                    _ => b.not(a),
                };
                pool.push(w);
            }
            for _ in 0..3 {
                let w = pool[meta_rng.gen_range(0..pool.len())];
                b.output(w);
            }
            let circuit = b.finish();
            let g: Vec<bool> = (0..ng).map(|_| meta_rng.gen()).collect();
            let e: Vec<bool> = (0..ne).map(|_| meta_rng.gen()).collect();
            let run = execute_locally(&circuit, &g, &e, 1, &mut meta_rng);
            assert_eq!(run.outputs, circuit.eval(&g, &e), "trial {trial}");
        }
    }
}

#[cfg(test)]
mod failure_tests {
    use deepsecure_circuit::Builder;
    use deepsecure_crypto::Block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::{Evaluator, Garbler};

    fn and_tree() -> deepsecure_circuit::Circuit {
        let mut b = Builder::new();
        let xs = b.garbler_inputs(4);
        let ys = b.evaluator_inputs(4);
        let mut acc = b.const1();
        for (x, y) in xs.iter().zip(&ys) {
            let t = b.and(*x, *y);
            acc = b.and(acc, t);
        }
        b.output(acc);
        b.finish()
    }

    #[test]
    fn corrupted_table_changes_or_garbles_output() {
        // Flipping one garbled-table bit must not silently yield the
        // correct wire semantics for all inputs (integrity is not part of
        // HbC guarantees, but corruption must visibly derail evaluation).
        let c = and_tree();
        let mut rng = StdRng::seed_from_u64(7);
        let mut diverged = false;
        for trial in 0..8 {
            let mut garbler = Garbler::new(&c, &mut rng);
            let mut evaluator = Evaluator::new(&c);
            evaluator.set_initial_registers(garbler.initial_register_labels());
            let mut cyc = garbler.garble_cycle(&mut rng);
            evaluator.set_constant_labels(cyc.constant_labels[0], cyc.constant_labels[1]);
            // Corrupt one row.
            let idx = trial % cyc.tables.len();
            cyc.tables[idx] ^= Block::from(1u128 << (trial * 7 % 128));
            let g = cyc.garbler_active(&[true; 4]);
            let e = cyc.evaluator_active(&[true; 4]);
            let out = evaluator.eval_cycle(&cyc.tables, &g, &e, &cyc.output_decode);
            if out != vec![true] {
                diverged = true;
            }
        }
        assert!(diverged, "corruption never affected any evaluation");
    }

    #[test]
    fn wrong_input_label_changes_result() {
        // Handing the evaluator the label for the other input value flips
        // the computed function — labels really do carry the semantics.
        let c = and_tree();
        let mut rng = StdRng::seed_from_u64(8);
        let mut garbler = Garbler::new(&c, &mut rng);
        let mut evaluator = Evaluator::new(&c);
        evaluator.set_initial_registers(garbler.initial_register_labels());
        let cyc = garbler.garble_cycle(&mut rng);
        evaluator.set_constant_labels(cyc.constant_labels[0], cyc.constant_labels[1]);
        let g = cyc.garbler_active(&[true; 4]);
        // Correct labels say all-true AND = true; swap one evaluator label
        // to the `false` branch.
        let mut e = cyc.evaluator_active(&[true; 4]);
        e[2] = cyc.evaluator_input_labels[2].0;
        let out = evaluator.eval_cycle(&cyc.tables, &g, &e, &cyc.output_decode);
        assert_eq!(out, vec![false]);
    }

    #[test]
    fn two_sessions_share_nothing() {
        let c = and_tree();
        let mut rng = StdRng::seed_from_u64(9);
        let g1 = Garbler::new(&c, &mut rng);
        let g2 = Garbler::new(&c, &mut rng);
        assert_ne!(g1.delta(), g2.delta(), "fresh Δ per session");
    }
}
