//! The garbling engine: Free-XOR + point-and-permute + half-gates over the
//! fixed-key AES hash — the optimization stack of §2.3.
//!
//! * XOR/XNOR/NOT/BUF gates are free (label XOR, no table, no bytes).
//! * Every non-XOR two-input gate is normalized to
//!   `((a⊕α) ∧ (b⊕β)) ⊕ γ` and garbled with half-gates — exactly two
//!   128-bit ciphertexts, which is where the paper's
//!   `α = N_non-XOR × 2 × 128 bit` communication formula (Table 2) comes
//!   from.
//! * Sequential circuits garble cycle by cycle with register labels carried
//!   across cycles (TinyGarble-style, §3.5): the material for one cycle is
//!   constant-size no matter how many cycles run.
//! * Within a cycle, garbling and evaluation both run **incrementally**:
//!   [`Garbler::begin_cycle`] assigns input labels up front and
//!   [`CycleGarbling::garble_chunk`] emits the table stream any number of
//!   non-free gates at a time, while [`Evaluator::begin_cycle`] +
//!   [`CycleEval::feed`] consume it as it arrives — the producer/consumer
//!   halves of the streaming pipeline, holding O(chunk) tables instead of
//!   O(circuit). The buffered [`Garbler::garble_cycle`] /
//!   [`Evaluator::eval_cycle`] are thin wrappers over the same walk, so
//!   chunking can never change the bytes (property-tested).
//!
//! [`Garbler`] and [`Evaluator`] are transport-agnostic state machines;
//! `deepsecure-core` wires them to channels and OT. [`execute_locally`]
//! runs both in-process for tests and calibration.
//!
//! # Example
//!
//! ```
//! use deepsecure_circuit::Builder;
//! use deepsecure_garble::execute_locally;
//! use rand::SeedableRng;
//!
//! let mut b = Builder::new();
//! let x = b.garbler_input();
//! let y = b.evaluator_input();
//! let z = b.and(x, y);
//! b.output(z);
//! let c = b.finish();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let run = execute_locally(&c, &[true], &[true], 1, &mut rng);
//! assert_eq!(run.outputs, vec![true]);
//! assert_eq!(run.material_bytes, 32, "one AND = two ciphertexts");
//! ```

mod evaluator;
mod garbler;
mod par;

pub use evaluator::{CycleEval, Evaluator};
pub use garbler::{CycleGarbling, GarbledCycle, Garbler};

use deepsecure_circuit::Circuit;
use rand::Rng;

/// Result of [`execute_locally`].
#[derive(Debug, Clone)]
pub struct LocalRun {
    /// Decoded output bits of the final cycle.
    pub outputs: Vec<bool>,
    /// Total garbled-table bytes produced (what would cross the network).
    pub material_bytes: u64,
    /// Decoded outputs of every cycle.
    pub per_cycle_outputs: Vec<Vec<bool>>,
}

/// Garbles and evaluates a circuit in-process, feeding the same inputs
/// every cycle. The reference for correctness tests and the β-coefficient
/// calibration of §4.3.
///
/// # Panics
///
/// Panics if input lengths do not match the circuit.
pub fn execute_locally<R: Rng + ?Sized>(
    circuit: &Circuit,
    garbler_inputs: &[bool],
    evaluator_inputs: &[bool],
    cycles: usize,
    rng: &mut R,
) -> LocalRun {
    execute_locally_with_pool(
        circuit,
        garbler_inputs,
        evaluator_inputs,
        cycles,
        rng,
        workpool::ThreadPool::sequential(),
    )
}

/// [`execute_locally`] with both parties driven by `pool` — the
/// level-parallel schedule, bit-identical to the sequential one.
///
/// # Panics
///
/// Panics if input lengths do not match the circuit.
pub fn execute_locally_with_pool<R: Rng + ?Sized>(
    circuit: &Circuit,
    garbler_inputs: &[bool],
    evaluator_inputs: &[bool],
    cycles: usize,
    rng: &mut R,
    pool: workpool::ThreadPool,
) -> LocalRun {
    let mut garbler = Garbler::new(circuit, rng).with_pool(pool);
    let mut evaluator = Evaluator::new(circuit).with_pool(pool);
    evaluator.set_initial_registers(garbler.initial_register_labels());
    let mut material = 0u64;
    let mut per_cycle = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let cycle = garbler.garble_cycle(rng);
        material += (cycle.tables.len() * 16) as u64;
        evaluator.set_constant_labels(cycle.constant_labels[0], cycle.constant_labels[1]);
        let g_labels = cycle.garbler_active(garbler_inputs);
        let e_labels = cycle.evaluator_active(evaluator_inputs);
        let outputs =
            evaluator.eval_cycle(&cycle.tables, &g_labels, &e_labels, &cycle.output_decode);
        per_cycle.push(outputs);
    }
    LocalRun {
        outputs: per_cycle.last().cloned().unwrap_or_default(),
        material_bytes: material,
        per_cycle_outputs: per_cycle,
    }
}

#[cfg(test)]
mod tests {
    use deepsecure_circuit::{Builder, Circuit, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn exhaustive_check(circuit: &Circuit) {
        let ng = circuit.garbler_inputs().len();
        let ne = circuit.evaluator_inputs().len();
        let mut rng = StdRng::seed_from_u64(0xabc);
        for bits in 0..(1u32 << (ng + ne)) {
            let g: Vec<bool> = (0..ng).map(|i| (bits >> i) & 1 == 1).collect();
            let e: Vec<bool> = (0..ne).map(|i| (bits >> (ng + i)) & 1 == 1).collect();
            let run = execute_locally(circuit, &g, &e, 1, &mut rng);
            let want = circuit.eval(&g, &e);
            assert_eq!(run.outputs, want, "inputs g={g:?} e={e:?}");
        }
    }

    #[test]
    fn all_gate_kinds_garble_correctly() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let g1 = b.and(x, y);
        let g2 = b.or(x, y);
        let g3 = b.nand(x, y);
        let g4 = b.nor(x, y);
        let g5 = b.xor(x, y);
        let g6 = b.xnor(x, y);
        let g7 = b.not(x);
        for w in [g1, g2, g3, g4, g5, g6, g7] {
            b.output(w);
        }
        exhaustive_check(&b.finish());
    }

    #[test]
    fn constants_garble_correctly() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let one = b.const1();
        let zero = b.const0();
        let a = b.and(x, one);
        let o = b.or(x, zero);
        b.output(a);
        b.output(o);
        b.output(one);
        b.output(zero);
        exhaustive_check(&b.finish());
    }

    #[test]
    fn full_adder_exhaustive() {
        let mut b = Builder::new();
        let a = b.garbler_input();
        let cin = b.garbler_input();
        let x = b.evaluator_input();
        let t1 = b.xor(a, cin);
        let t2 = b.xor(x, cin);
        let t3 = b.and(t1, t2);
        let cout = b.xor(cin, t3);
        let sum = b.xor(t1, x);
        b.output(sum);
        b.output(cout);
        exhaustive_check(&b.finish());
    }

    #[test]
    fn sequential_accumulator_matches_simulator() {
        // acc' = acc + x (2-bit counter with evaluator-controlled step).
        let mut b = Builder::new();
        let x = b.evaluator_input();
        let q0 = b.register(false);
        let q1 = b.register(false);
        let d0 = b.xor(q0, x);
        let carry = b.and(q0, x);
        let d1 = b.xor(q1, carry);
        b.connect_register(q0, d0);
        b.connect_register(q1, d1);
        b.output(d0);
        b.output(d1);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(77);
        let run = execute_locally(&c, &[], &[true], 5, &mut rng);
        let mut sim = Simulator::new(&c);
        let mut last = Vec::new();
        for _ in 0..5 {
            last = sim.step(&[], &[true]);
        }
        assert_eq!(run.outputs, last, "after 5 increments");
        // Check every intermediate cycle too.
        let mut sim = Simulator::new(&c);
        for cyc in 0..5 {
            assert_eq!(
                run.per_cycle_outputs[cyc],
                sim.step(&[], &[true]),
                "cycle {cyc}"
            );
        }
    }

    #[test]
    fn registers_with_nonzero_init() {
        let mut b = Builder::new();
        let q = b.register(true);
        let n = b.not(q);
        b.connect_register(q, n);
        b.output(q);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(4);
        let run = execute_locally(&c, &[], &[], 3, &mut rng);
        assert_eq!(
            run.per_cycle_outputs,
            vec![vec![true], vec![false], vec![true]]
        );
    }

    #[test]
    fn material_size_counts_only_non_free_gates() {
        let mut b = Builder::new();
        let xs = b.garbler_inputs(4);
        let ys = b.evaluator_inputs(4);
        let mut outs = Vec::new();
        for (x, y) in xs.iter().zip(&ys) {
            outs.push(b.xor(*x, *y)); // free
        }
        let a = b.and(outs[0], outs[1]);
        let o = b.or(outs[2], outs[3]);
        b.output(a);
        b.output(o);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(3);
        let run = execute_locally(&c, &[true; 4], &[false; 4], 1, &mut rng);
        assert_eq!(run.material_bytes, 2 * 32, "2 non-XOR gates x 32 bytes");
    }

    #[test]
    fn random_circuits_match_simulator() {
        use rand::Rng as _;
        let mut meta_rng = StdRng::seed_from_u64(0x5eed);
        for trial in 0..30 {
            let mut b = Builder::new();
            let ng = meta_rng.gen_range(1..5);
            let ne = meta_rng.gen_range(1..5);
            let mut pool: Vec<_> = b.garbler_inputs(ng);
            pool.extend(b.evaluator_inputs(ne));
            for _ in 0..meta_rng.gen_range(5..40) {
                let a = pool[meta_rng.gen_range(0..pool.len())];
                let c = pool[meta_rng.gen_range(0..pool.len())];
                let w = match meta_rng.gen_range(0..7) {
                    0 => b.xor(a, c),
                    1 => b.and(a, c),
                    2 => b.or(a, c),
                    3 => b.xnor(a, c),
                    4 => b.nand(a, c),
                    5 => b.nor(a, c),
                    _ => b.not(a),
                };
                pool.push(w);
            }
            for _ in 0..3 {
                let w = pool[meta_rng.gen_range(0..pool.len())];
                b.output(w);
            }
            let circuit = b.finish();
            let g: Vec<bool> = (0..ng).map(|_| meta_rng.gen()).collect();
            let e: Vec<bool> = (0..ne).map(|_| meta_rng.gen()).collect();
            let run = execute_locally(&circuit, &g, &e, 1, &mut meta_rng);
            assert_eq!(run.outputs, circuit.eval(&g, &e), "trial {trial}");
        }
    }
}

#[cfg(test)]
mod streaming_tests {
    use deepsecure_circuit::{Builder, Circuit};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};

    use super::*;

    /// A random mixed-gate circuit with `ng`/`ne` inputs (same shape family
    /// as `random_circuits_match_simulator`).
    fn random_circuit(seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Builder::new();
        let ng = rng.gen_range(1..4);
        let ne = rng.gen_range(1..4);
        let mut pool: Vec<_> = b.garbler_inputs(ng);
        pool.extend(b.evaluator_inputs(ne));
        for _ in 0..rng.gen_range(8..60) {
            let a = pool[rng.gen_range(0..pool.len())];
            let c = pool[rng.gen_range(0..pool.len())];
            let w = match rng.gen_range(0..7) {
                0 => b.xor(a, c),
                1 => b.and(a, c),
                2 => b.or(a, c),
                3 => b.xnor(a, c),
                4 => b.nand(a, c),
                5 => b.nor(a, c),
                _ => b.not(a),
            };
            pool.push(w);
        }
        for _ in 0..3 {
            let w = pool[rng.gen_range(0..pool.len())];
            b.output(w);
        }
        b.finish()
    }

    /// Garbles one cycle through the chunked API with `chunk` non-free
    /// gates per call; returns the concatenated stream plus the metadata.
    fn garble_chunked(
        garbler: &mut Garbler<'_>,
        rng: &mut StdRng,
        chunk: usize,
    ) -> (Vec<Vec<Block>>, GarbledCycle) {
        let mut cycle = garbler.begin_cycle(rng);
        let garbler_input_labels = cycle.garbler_input_labels().to_vec();
        let evaluator_input_labels = cycle.evaluator_input_labels().to_vec();
        let constant_labels = cycle.constant_labels();
        let mut chunks = Vec::new();
        loop {
            let mut buf = Vec::new();
            let done = cycle.garble_chunk(chunk, &mut buf);
            if done == 0 {
                assert!(buf.is_empty());
                break;
            }
            assert!(done <= chunk);
            assert_eq!(buf.len(), 2 * done, "two rows per non-free gate");
            chunks.push(buf);
        }
        let output_decode = cycle.finish();
        let tables = chunks.iter().flatten().copied().collect();
        (
            chunks,
            GarbledCycle {
                tables,
                garbler_input_labels,
                evaluator_input_labels,
                constant_labels,
                output_decode,
            },
        )
    }

    use deepsecure_crypto::Block;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn chunked_garble_and_feed_eval_are_bit_identical_to_buffered(
            circuit_seed in 0u64..1u64 << 48,
            rng_seed in 0u64..1u64 << 48,
            chunk_sel in 0usize..8,
        ) {
            // Chunk sizes: 1 gate, a handful, and far larger than any
            // test circuit (one chunk ≡ buffered).
            let chunk = match chunk_sel {
                0 => 1,
                7 => 1usize << 20,
                n => n,
            };
            let c = random_circuit(circuit_seed);
            let ng = c.garbler_inputs().len();
            let ne = c.evaluator_inputs().len();
            let mut bit_rng = StdRng::seed_from_u64(rng_seed ^ 0xb17);
            let g_bits: Vec<bool> = (0..ng).map(|_| bit_rng.gen()).collect();
            let e_bits: Vec<bool> = (0..ne).map(|_| bit_rng.gen()).collect();

            // Buffered reference (one RNG stream)…
            let mut rng_a = StdRng::seed_from_u64(rng_seed);
            let mut garbler_a = Garbler::new(&c, &mut rng_a);
            let buffered = garbler_a.garble_cycle(&mut rng_a);
            // …versus the chunked producer on an identical RNG stream.
            let mut rng_b = StdRng::seed_from_u64(rng_seed);
            let mut garbler_b = Garbler::new(&c, &mut rng_b);
            let (chunks, streamed) = garble_chunked(&mut garbler_b, &mut rng_b, chunk);

            // Identical material and labels, whatever the chunk size.
            prop_assert_eq!(&streamed.tables, &buffered.tables);
            prop_assert_eq!(
                &streamed.garbler_input_labels,
                &buffered.garbler_input_labels
            );
            prop_assert_eq!(
                &streamed.evaluator_input_labels,
                &buffered.evaluator_input_labels
            );
            prop_assert_eq!(streamed.constant_labels, buffered.constant_labels);
            prop_assert_eq!(&streamed.output_decode, &buffered.output_decode);

            // Feeding the evaluator chunk by chunk decodes the same bits as
            // the buffered call — and matches the plaintext circuit.
            let g_labels = buffered.garbler_active(&g_bits);
            let e_labels = buffered.evaluator_active(&e_bits);
            let mut ev_buf = Evaluator::new(&c);
            ev_buf.set_constant_labels(buffered.constant_labels[0], buffered.constant_labels[1]);
            let want = ev_buf.eval_cycle(
                &buffered.tables,
                &g_labels,
                &e_labels,
                &buffered.output_decode,
            );
            let mut ev_str = Evaluator::new(&c);
            ev_str.set_constant_labels(streamed.constant_labels[0], streamed.constant_labels[1]);
            let mut cyc = ev_str.begin_cycle(&g_labels, &e_labels);
            for part in &chunks {
                cyc.feed(part);
            }
            // An all-free cycle has no chunks; an empty feed still walks it.
            cyc.feed(&[]);
            prop_assert!(cyc.is_complete());
            let got = cyc.finish(&streamed.output_decode);
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(got, c.eval(&g_bits, &e_bits));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        // The multi-core tentpole's contract: a pool-scheduled garbler and
        // evaluator are bit-identical to the sequential walk — same tables
        // (chunk by chunk, so the streamed wire bytes match too), same
        // input labels, same decode bits, same decoded outputs — for every
        // worker count and chunk size. Worker counts are forced, so this
        // exercises real cross-thread interleaving even on a 1-vCPU CI
        // host.
        #[test]
        fn parallel_garble_and_eval_are_bit_identical_to_sequential(
            circuit_seed in 0u64..1u64 << 48,
            rng_seed in 0u64..1u64 << 48,
            workers_sel in 0usize..3,
            chunk_sel in 0usize..3,
        ) {
            let workers = [1usize, 2, 7][workers_sel];
            // 1 gate per chunk, a small handful, and far larger than any
            // test circuit (one chunk ≡ buffered).
            let chunk = [1usize, 5, 1 << 20][chunk_sel];
            let c = random_circuit(circuit_seed);
            let ng = c.garbler_inputs().len();
            let ne = c.evaluator_inputs().len();
            let mut bit_rng = StdRng::seed_from_u64(rng_seed ^ 0xb17);
            let g_bits: Vec<bool> = (0..ng).map(|_| bit_rng.gen()).collect();
            let e_bits: Vec<bool> = (0..ne).map(|_| bit_rng.gen()).collect();

            // Sequential buffered reference.
            let mut rng_a = StdRng::seed_from_u64(rng_seed);
            let mut garbler_a = Garbler::new(&c, &mut rng_a);
            let reference = garbler_a.garble_cycle(&mut rng_a);

            // Pool-scheduled chunked producer on an identical RNG stream
            // (the pool never touches the RNG: labels are drawn in
            // begin_cycle, before any gate is garbled).
            let pool = workpool::ThreadPool::new(workers);
            let mut rng_b = StdRng::seed_from_u64(rng_seed);
            let mut garbler_b = Garbler::new(&c, &mut rng_b).with_pool(pool);
            let (chunks, parallel) = garble_chunked(&mut garbler_b, &mut rng_b, chunk);

            prop_assert_eq!(&parallel.tables, &reference.tables);
            prop_assert_eq!(
                &parallel.garbler_input_labels,
                &reference.garbler_input_labels
            );
            prop_assert_eq!(
                &parallel.evaluator_input_labels,
                &reference.evaluator_input_labels
            );
            prop_assert_eq!(parallel.constant_labels, reference.constant_labels);
            prop_assert_eq!(&parallel.output_decode, &reference.output_decode);

            // Pool-scheduled evaluator fed those same chunks decodes the
            // same bits as the sequential buffered evaluation.
            let g_labels = reference.garbler_active(&g_bits);
            let e_labels = reference.evaluator_active(&e_bits);
            let mut ev_seq = Evaluator::new(&c);
            ev_seq.set_constant_labels(reference.constant_labels[0], reference.constant_labels[1]);
            let want = ev_seq.eval_cycle(
                &reference.tables,
                &g_labels,
                &e_labels,
                &reference.output_decode,
            );
            let mut ev_par = Evaluator::new(&c).with_pool(pool);
            ev_par.set_constant_labels(parallel.constant_labels[0], parallel.constant_labels[1]);
            let mut cyc = ev_par.begin_cycle(&g_labels, &e_labels);
            for part in &chunks {
                cyc.feed(part);
            }
            cyc.feed(&[]);
            prop_assert!(cyc.is_complete());
            let got = cyc.finish(&parallel.output_decode);
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(got, c.eval(&g_bits, &e_bits));
        }
    }

    #[test]
    fn parallel_feed_handles_row_misaligned_chunks() {
        // Single-row feeds against a 7-worker evaluator: the orphan-row
        // stash must behave exactly like the sequential walk's.
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let mut w = b.and(x, y);
        for _ in 0..6 {
            w = b.and(w, y);
        }
        b.output(w);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = Garbler::new(&c, &mut rng);
        let cy = g.garble_cycle(&mut rng);
        let g_labels = cy.garbler_active(&[true]);
        let e_labels = cy.evaluator_active(&[true]);
        let mut ev = Evaluator::new(&c).with_pool(workpool::ThreadPool::new(7));
        let mut cyc = ev.begin_cycle(&g_labels, &e_labels);
        for row in &cy.tables {
            cyc.feed(std::slice::from_ref(row));
        }
        assert!(cyc.is_complete());
        assert_eq!(cyc.finish(&cy.output_decode), vec![true]);
    }

    #[test]
    fn parallel_sequential_cycles_latch_registers_identically() {
        // Register carry across cycles, parallel vs sequential, same RNG.
        let mut b = Builder::new();
        let x = b.evaluator_input();
        let q0 = b.register(false);
        let q1 = b.register(true);
        let d0 = b.xor(q0, x);
        let carry = b.and(q0, x);
        let d1 = b.xor(q1, carry);
        b.connect_register(q0, d0);
        b.connect_register(q1, d1);
        b.output(d0);
        b.output(d1);
        let c = b.finish();
        let run = |workers: usize| {
            let mut rng = StdRng::seed_from_u64(91);
            let mut garbler =
                Garbler::new(&c, &mut rng).with_pool(workpool::ThreadPool::new(workers));
            (0..5)
                .map(|_| garbler.garble_cycle(&mut rng).tables)
                .collect::<Vec<_>>()
        };
        let sequential = run(1);
        assert_eq!(run(2), sequential);
        assert_eq!(run(7), sequential);
    }

    #[test]
    fn feed_handles_row_misaligned_chunks() {
        // Feeds that split a non-free gate's two rows across calls must
        // buffer the orphan row and resume — streaming never requires the
        // producer's chunking to align with gate boundaries.
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let mut w = b.and(x, y);
        for _ in 0..4 {
            w = b.and(w, y);
        }
        b.output(w);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = Garbler::new(&c, &mut rng);
        let cy = g.garble_cycle(&mut rng);
        let g_labels = cy.garbler_active(&[true]);
        let e_labels = cy.evaluator_active(&[true]);
        let mut ev = Evaluator::new(&c);
        let mut cyc = ev.begin_cycle(&g_labels, &e_labels);
        // One row at a time: every other feed leaves an orphan row pending.
        for row in &cy.tables {
            cyc.feed(std::slice::from_ref(row));
        }
        assert!(cyc.is_complete());
        assert_eq!(cyc.finish(&cy.output_decode), vec![true]);
    }

    #[test]
    fn sequential_chunked_cycles_match_buffered_cycles() {
        // Register latching must carry across chunk-streamed cycles exactly
        // as it does across buffered ones.
        let mut b = Builder::new();
        let x = b.evaluator_input();
        let q0 = b.register(false);
        let q1 = b.register(true);
        let d0 = b.xor(q0, x);
        let carry = b.and(q0, x);
        let d1 = b.xor(q1, carry);
        b.connect_register(q0, d0);
        b.connect_register(q1, d1);
        b.output(d0);
        b.output(d1);
        let c = b.finish();

        let run = |chunk: Option<usize>| -> Vec<Vec<bool>> {
            let mut rng = StdRng::seed_from_u64(91);
            let mut garbler = Garbler::new(&c, &mut rng);
            let mut ev = Evaluator::new(&c);
            ev.set_initial_registers(garbler.initial_register_labels());
            let mut outs = Vec::new();
            for _ in 0..5 {
                match chunk {
                    None => {
                        let cy = garbler.garble_cycle(&mut rng);
                        ev.set_constant_labels(cy.constant_labels[0], cy.constant_labels[1]);
                        let e = cy.evaluator_active(&[true]);
                        outs.push(ev.eval_cycle(&cy.tables, &[], &e, &cy.output_decode));
                    }
                    Some(k) => {
                        let mut gc = garbler.begin_cycle(&mut rng);
                        let consts = gc.constant_labels();
                        let e: Vec<Block> = [true]
                            .iter()
                            .zip(gc.evaluator_input_labels())
                            .map(|(&bit, (l0, l1))| if bit { *l1 } else { *l0 })
                            .collect();
                        ev.set_constant_labels(consts[0], consts[1]);
                        let mut ec = ev.begin_cycle(&[], &e);
                        let mut buf = Vec::new();
                        loop {
                            buf.clear();
                            if gc.garble_chunk(k, &mut buf) == 0 {
                                break;
                            }
                            ec.feed(&buf);
                        }
                        let decode = gc.finish();
                        outs.push(ec.finish(&decode));
                    }
                }
            }
            outs
        };
        let buffered = run(None);
        assert_eq!(run(Some(1)), buffered);
        assert_eq!(run(Some(3)), buffered);
        assert_eq!(run(Some(1 << 20)), buffered);
    }
}

#[cfg(test)]
mod failure_tests {
    use deepsecure_circuit::Builder;
    use deepsecure_crypto::Block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::{Evaluator, Garbler};

    fn and_tree() -> deepsecure_circuit::Circuit {
        let mut b = Builder::new();
        let xs = b.garbler_inputs(4);
        let ys = b.evaluator_inputs(4);
        let mut acc = b.const1();
        for (x, y) in xs.iter().zip(&ys) {
            let t = b.and(*x, *y);
            acc = b.and(acc, t);
        }
        b.output(acc);
        b.finish()
    }

    #[test]
    fn corrupted_table_changes_or_garbles_output() {
        // Flipping one garbled-table bit must not silently yield the
        // correct wire semantics for all inputs (integrity is not part of
        // HbC guarantees, but corruption must visibly derail evaluation).
        let c = and_tree();
        let mut rng = StdRng::seed_from_u64(7);
        let mut diverged = false;
        for trial in 0..8 {
            let mut garbler = Garbler::new(&c, &mut rng);
            let mut evaluator = Evaluator::new(&c);
            evaluator.set_initial_registers(garbler.initial_register_labels());
            let mut cyc = garbler.garble_cycle(&mut rng);
            evaluator.set_constant_labels(cyc.constant_labels[0], cyc.constant_labels[1]);
            // Corrupt one row.
            let idx = trial % cyc.tables.len();
            cyc.tables[idx] ^= Block::from(1u128 << (trial * 7 % 128));
            let g = cyc.garbler_active(&[true; 4]);
            let e = cyc.evaluator_active(&[true; 4]);
            let out = evaluator.eval_cycle(&cyc.tables, &g, &e, &cyc.output_decode);
            if out != vec![true] {
                diverged = true;
            }
        }
        assert!(diverged, "corruption never affected any evaluation");
    }

    #[test]
    fn wrong_input_label_changes_result() {
        // Handing the evaluator the label for the other input value flips
        // the computed function — labels really do carry the semantics.
        let c = and_tree();
        let mut rng = StdRng::seed_from_u64(8);
        let mut garbler = Garbler::new(&c, &mut rng);
        let mut evaluator = Evaluator::new(&c);
        evaluator.set_initial_registers(garbler.initial_register_labels());
        let cyc = garbler.garble_cycle(&mut rng);
        evaluator.set_constant_labels(cyc.constant_labels[0], cyc.constant_labels[1]);
        let g = cyc.garbler_active(&[true; 4]);
        // Correct labels say all-true AND = true; swap one evaluator label
        // to the `false` branch.
        let mut e = cyc.evaluator_active(&[true; 4]);
        e[2] = cyc.evaluator_input_labels[2].0;
        let out = evaluator.eval_cycle(&cyc.tables, &g, &e, &cyc.output_decode);
        assert_eq!(out, vec![false]);
    }

    #[test]
    fn two_sessions_share_nothing() {
        let c = and_tree();
        let mut rng = StdRng::seed_from_u64(9);
        let g1 = Garbler::new(&c, &mut rng);
        let g2 = Garbler::new(&c, &mut rng);
        assert_ne!(g1.delta(), g2.delta(), "fresh Δ per session");
    }
}
