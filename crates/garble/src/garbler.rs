use std::sync::RwLock;

use deepsecure_circuit::{Circuit, GateKind, Wire, CONST_0, CONST_1};
use deepsecure_crypto::{Block, FixedKeyHash};
use rand::Rng;
use workpool::ThreadPool;

use crate::par::{Par, PAR_GRAIN};

/// The material and label metadata for one garbled clock cycle.
#[derive(Debug, Clone)]
pub struct GarbledCycle {
    /// Two ciphertexts per non-free gate, in topological gate order.
    pub tables: Vec<Block>,
    /// `(label_false, label_true)` for each garbler input wire.
    pub garbler_input_labels: Vec<(Block, Block)>,
    /// `(label_false, label_true)` for each evaluator input wire — the OT
    /// message pairs.
    pub evaluator_input_labels: Vec<(Block, Block)>,
    /// Active labels for the two constant wires (fixed across cycles; the
    /// garbler transmits them with the first cycle).
    pub constant_labels: [Block; 2],
    /// Point-and-permute decode bit per output wire.
    pub output_decode: Vec<bool>,
}

impl GarbledCycle {
    /// The active labels for the garbler's own input bits.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn garbler_active(&self, bits: &[bool]) -> Vec<Block> {
        assert_eq!(
            bits.len(),
            self.garbler_input_labels.len(),
            "garbler input arity"
        );
        bits.iter()
            .zip(&self.garbler_input_labels)
            .map(|(&b, (l0, l1))| if b { *l1 } else { *l0 })
            .collect()
    }

    /// The active labels for given evaluator bits — what OT would deliver
    /// (used by tests and the local runner; the protocol uses real OT).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn evaluator_active(&self, bits: &[bool]) -> Vec<Block> {
        assert_eq!(
            bits.len(),
            self.evaluator_input_labels.len(),
            "evaluator input arity"
        );
        bits.iter()
            .zip(&self.evaluator_input_labels)
            .map(|(&b, (l0, l1))| if b { *l1 } else { *l0 })
            .collect()
    }
}

/// The garbling state machine (the client/Alice role in DeepSecure).
///
/// Holds the Free-XOR offset Δ, the constant-wire labels, and the carried
/// false labels of register outputs so that sequential circuits garble one
/// cycle at a time in constant memory (§3.5).
pub struct Garbler<'c> {
    circuit: &'c Circuit,
    delta: Block,
    hash: FixedKeyHash,
    const_labels: [Block; 2],
    /// False labels of register q wires, carried across cycles.
    reg_labels: Vec<Block>,
    /// Monotone per-gate tweak counter (never reused across cycles).
    tweak: u64,
    /// Non-free gate count, fixed per circuit: every cycle's table stream
    /// has exactly `2 * nonfree` entries.
    nonfree: usize,
    /// Level-parallel scheduling state; `None` garbles sequentially.
    par: Option<Par>,
}

impl std::fmt::Debug for Garbler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Garbler")
            .field("tweak", &self.tweak)
            .finish_non_exhaustive()
    }
}

impl<'c> Garbler<'c> {
    /// Creates a garbler with a fresh Δ and register/constant labels.
    pub fn new<R: Rng + ?Sized>(circuit: &'c Circuit, rng: &mut R) -> Garbler<'c> {
        let delta = Block::random_delta(rng);
        Garbler {
            circuit,
            delta,
            hash: FixedKeyHash::new(),
            const_labels: [Block::random(rng), Block::random(rng)],
            reg_labels: (0..circuit.registers().len())
                .map(|_| Block::random(rng))
                .collect(),
            tweak: 0,
            nonfree: circuit.nonfree_gate_count(),
            par: None,
        }
    }

    /// Attaches a thread pool: non-free gates within a dependency level are
    /// hashed across the pool's workers. The produced tables, labels and
    /// decode bits are **bit-identical** to the sequential walk — each gate
    /// is a pure function of its settled input labels, Δ and its fixed
    /// per-gate tweak, so this is a scheduling change, not a crypto change.
    /// A sequential pool (`workers == 1`) keeps the plain inline walk.
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.par = Par::for_circuit(self.circuit, pool);
        self
    }

    /// The global Free-XOR offset (exposed for invariant tests; a real
    /// deployment never reveals it).
    pub fn delta(&self) -> Block {
        self.delta
    }

    /// Active labels encoding each register's initial power-on value; sent
    /// to the evaluator once before the first cycle.
    pub fn initial_register_labels(&self) -> Vec<Block> {
        self.circuit
            .registers()
            .iter()
            .zip(&self.reg_labels)
            .map(|(r, &l0)| if r.init { l0 ^ self.delta } else { l0 })
            .collect()
    }

    /// Garbles one clock cycle, assigning fresh input labels and producing
    /// the table stream. Register output labels are the ones carried from
    /// the previous cycle; register input labels are carried forward.
    ///
    /// Implemented on top of [`Garbler::begin_cycle`] — the buffered and
    /// the chunk-streamed paths share one code path, which is what makes
    /// them bit-identical by construction.
    pub fn garble_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) -> GarbledCycle {
        let mut cycle = self.begin_cycle(rng);
        let mut tables = Vec::with_capacity(2 * cycle.remaining_nonfree());
        cycle.garble_chunk(usize::MAX, &mut tables);
        let garbler_input_labels = cycle.garbler_input_labels().to_vec();
        let evaluator_input_labels = cycle.evaluator_input_labels().to_vec();
        let constant_labels = cycle.constant_labels();
        let output_decode = cycle.finish();
        GarbledCycle {
            tables,
            garbler_input_labels,
            evaluator_input_labels,
            constant_labels,
            output_decode,
        }
    }

    /// Starts garbling one clock cycle incrementally: input labels are
    /// assigned immediately (so OT and label transfer can begin before any
    /// gate is garbled), tables are produced on demand by
    /// [`CycleGarbling::garble_chunk`] in fixed-size chunks — the
    /// constant-memory producer half of the streaming pipeline.
    ///
    /// The returned handle borrows the garbler; it must be driven to
    /// completion ([`CycleGarbling::finish`]) before the next cycle starts.
    pub fn begin_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) -> CycleGarbling<'_, 'c> {
        let c = self.circuit;
        let mut labels: Vec<Block> = vec![Block::ZERO; c.wire_count()];
        labels[CONST_0.index()] = self.const_labels[0];
        // The evaluator's label for const-1 *encodes true*: its false label
        // is offset by Δ.
        labels[CONST_1.index()] = self.const_labels[1];

        let mut garbler_inputs = Vec::with_capacity(c.garbler_inputs().len());
        for w in c.garbler_inputs() {
            let l0 = Block::random(rng);
            labels[w.index()] = l0;
            garbler_inputs.push((l0, l0 ^ self.delta));
        }
        let mut evaluator_inputs = Vec::with_capacity(c.evaluator_inputs().len());
        for w in c.evaluator_inputs() {
            let l0 = Block::random(rng);
            labels[w.index()] = l0;
            evaluator_inputs.push((l0, l0 ^ self.delta));
        }
        for (r, &l0) in c.registers().iter().zip(&self.reg_labels) {
            labels[r.q.index()] = l0;
        }
        CycleGarbling {
            garbler: self,
            labels: RwLock::new(labels),
            next_gate: 0,
            rows_emitted: 0,
            garbler_input_labels: garbler_inputs,
            evaluator_input_labels: evaluator_inputs,
        }
    }

    /// Half-gates AND garbling (Zahur–Rosulek–Evans): two ciphertexts,
    /// returns the output false label.
    fn garble_and(&mut self, a0: Block, b0: Block, tables: &mut Vec<Block>) -> Block {
        let (table_g, table_e, w) = and_halfgates(&self.hash, self.delta, a0, b0, self.tweak);
        self.tweak += 2;
        tables.push(table_g);
        tables.push(table_e);
        w
    }

    /// Label sanity helper: every wire pair must differ by exactly Δ.
    /// (Used by invariant tests.)
    pub fn labels_differ_by_delta(&self, l0: Block, l1: Block) -> bool {
        l0 ^ l1 == self.delta
    }

    /// The wires whose labels an evaluator needs via OT, in order.
    pub fn evaluator_wires(&self) -> &[Wire] {
        self.circuit.evaluator_inputs()
    }
}

/// Half-gates AND as a pure function of the effective input false labels,
/// Δ and the gate's generator tweak (`t_e = t_g + 1`): the two table rows
/// plus the output false label. The four hashes an AND gate needs
/// (`hg0/hg1/he0/he1`) go through one batched AES pass. Being stateless is
/// what lets pool workers garble a level's gates in any order.
fn and_halfgates(
    hash: &FixedKeyHash,
    delta: Block,
    a0: Block,
    b0: Block,
    t_g: u64,
) -> (Block, Block, Block) {
    let t_e = t_g + 1;
    let p_a = a0.color();
    let p_b = b0.color();
    let a1 = a0 ^ delta;
    let b1 = b0 ^ delta;
    let [hg0, hg1, he0, he1] = hash.hash4([a0, a1, b0, b1], [t_g, t_g, t_e, t_e]);
    // Generator half gate.
    let mut table_g = hg0 ^ hg1;
    if p_b {
        table_g ^= delta;
    }
    let mut w_g = hg0;
    if p_a {
        w_g ^= table_g;
    }
    // Evaluator half gate.
    let table_e = he0 ^ he1 ^ a0;
    let mut w_e = he0;
    if p_b {
        w_e ^= table_e ^ a0;
    }
    (table_g, table_e, w_g ^ w_e)
}

/// One clock cycle being garbled incrementally (the streaming producer).
///
/// Created by [`Garbler::begin_cycle`]. Input label pairs are available
/// from the start; [`CycleGarbling::garble_chunk`] then emits the table
/// stream in gate order, any number of non-free gates at a time, and
/// [`CycleGarbling::finish`] closes the cycle (latching register labels
/// forward and yielding the output decode bits).
///
/// Chunk boundaries never change the produced bytes: the concatenation of
/// all chunks is bit-identical to [`Garbler::garble_cycle`]'s `tables`
/// for the same RNG stream, whatever the chunk sizes.
pub struct CycleGarbling<'g, 'c> {
    garbler: &'g mut Garbler<'c>,
    /// Wire labels of this cycle (false labels; grows gate by gate). Behind
    /// a lock only for the level-parallel path, where pool workers read
    /// settled labels while the caller thread commits a level's outputs
    /// between barriers; the sequential walk goes through `get_mut` and
    /// never locks.
    labels: RwLock<Vec<Block>>,
    /// Next gate to garble (netlist is topologically sorted).
    next_gate: usize,
    /// Table rows emitted so far (2 per non-free gate).
    rows_emitted: usize,
    garbler_input_labels: Vec<(Block, Block)>,
    evaluator_input_labels: Vec<(Block, Block)>,
}

impl std::fmt::Debug for CycleGarbling<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleGarbling")
            .field("next_gate", &self.next_gate)
            .field("rows_emitted", &self.rows_emitted)
            .finish_non_exhaustive()
    }
}

impl CycleGarbling<'_, '_> {
    /// `(label_false, label_true)` per garbler input wire.
    pub fn garbler_input_labels(&self) -> &[(Block, Block)] {
        &self.garbler_input_labels
    }

    /// `(label_false, label_true)` per evaluator input wire — the OT
    /// message pairs, available before any gate is garbled.
    pub fn evaluator_input_labels(&self) -> &[(Block, Block)] {
        &self.evaluator_input_labels
    }

    /// Active labels for the constant wires (const-0 encodes false,
    /// const-1 encodes true).
    pub fn constant_labels(&self) -> [Block; 2] {
        [
            self.garbler.const_labels[0],
            self.garbler.const_labels[1] ^ self.garbler.delta,
        ]
    }

    /// Active labels for the garbler's own input bits.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn garbler_active(&self, bits: &[bool]) -> Vec<Block> {
        assert_eq!(
            bits.len(),
            self.garbler_input_labels.len(),
            "garbler input arity"
        );
        bits.iter()
            .zip(&self.garbler_input_labels)
            .map(|(&b, (l0, l1))| if b { *l1 } else { *l0 })
            .collect()
    }

    /// Non-free gates not yet garbled in this cycle.
    pub fn remaining_nonfree(&self) -> usize {
        self.garbler.nonfree - self.rows_emitted / 2
    }

    /// Garbles up to `max_nonfree` non-free gates (and every free gate in
    /// between), appending their table rows to `out`. Returns the number
    /// of non-free gates garbled — `0` means the cycle's gate walk is
    /// complete and [`CycleGarbling::finish`] may be called.
    pub fn garble_chunk(&mut self, max_nonfree: usize, out: &mut Vec<Block>) -> usize {
        if let Some(par) = self.garbler.par.clone() {
            return self.garble_chunk_parallel(max_nonfree, out, &par);
        }
        let g = &mut *self.garbler;
        let c = g.circuit;
        let gates = c.gates();
        let labels = self.labels.get_mut().unwrap_or_else(|p| p.into_inner());
        let mut done = 0usize;
        while self.next_gate < gates.len() && done < max_nonfree {
            let gate = &gates[self.next_gate];
            let a = labels[gate.a.index()];
            let b = labels[gate.b.index()];
            let out_label = match gate.kind {
                GateKind::Xor => a ^ b,
                GateKind::Xnor => a ^ b ^ g.delta,
                GateKind::Not => a ^ g.delta,
                GateKind::Buf => a,
                kind => {
                    let (alpha, beta, gamma) = kind.and_form();
                    let a_eff = if alpha { a ^ g.delta } else { a };
                    let b_eff = if beta { b ^ g.delta } else { b };
                    let w = g.garble_and(a_eff, b_eff, out);
                    done += 1;
                    self.rows_emitted += 2;
                    if gamma {
                        w ^ g.delta
                    } else {
                        w
                    }
                }
            };
            labels[gate.out.index()] = out_label;
            self.next_gate += 1;
        }
        done
    }

    /// The level-parallel chunk walk: groups the chunk's gate range by
    /// dependency level, hashes each level's gates across the pool, and
    /// commits output labels and table rows in gate order between levels —
    /// bit-identical to the sequential walk because every non-free gate's
    /// tweak (`cycle base + 2 × non-free ordinal`) and row slots
    /// (`2 × in-chunk ordinal`) are fixed by the netlist, not the schedule.
    fn garble_chunk_parallel(
        &mut self,
        max_nonfree: usize,
        out: &mut Vec<Block>,
        par: &Par,
    ) -> usize {
        let g = &*self.garbler;
        let gates = g.circuit.gates();
        let lv = &*par.levels;
        let start = self.next_gate;
        if start == gates.len() || max_nonfree == 0 {
            return 0;
        }
        // Same stopping rule as the sequential loop: stop right after the
        // `max_nonfree`-th non-free gate; trailing free gates belong to the
        // next chunk.
        let end = match lv.nth_nonfree_at(start, max_nonfree) {
            Some(last) => last + 1,
            None => gates.len(),
        };
        let base_nf = lv.nonfree_before(start) as usize;
        let done = lv.nonfree_before(end) as usize - base_nf;
        let delta = g.delta;
        let hash = g.hash.clone();
        let cycle_tweak_base = g.tweak - self.rows_emitted as u64;
        let (order, spans) = lv.order_range(start..end);
        let mut rows = vec![Block::ZERO; 2 * done];
        {
            let labels = &self.labels;
            let (order, spans, rows) = (&order, &spans, &mut rows);
            par.pool.waves(
                spans.len(),
                PAR_GRAIN,
                |w| spans[w].len(),
                |w, range| {
                    let span = &order[spans[w].clone()];
                    let labels = labels.read().unwrap_or_else(|p| p.into_inner());
                    span[range]
                        .iter()
                        .map(|&gi| {
                            let gi = gi as usize;
                            let gate = &gates[gi];
                            let a = labels[gate.a.index()];
                            let b = labels[gate.b.index()];
                            match gate.kind {
                                GateKind::Xor => (a ^ b, None),
                                GateKind::Xnor => (a ^ b ^ delta, None),
                                GateKind::Not => (a ^ delta, None),
                                GateKind::Buf => (a, None),
                                kind => {
                                    let (alpha, beta, gamma) = kind.and_form();
                                    let a_eff = if alpha { a ^ delta } else { a };
                                    let b_eff = if beta { b ^ delta } else { b };
                                    let t_g =
                                        cycle_tweak_base + 2 * u64::from(lv.nonfree_before(gi));
                                    let (table_g, table_e, w0) =
                                        and_halfgates(&hash, delta, a_eff, b_eff, t_g);
                                    (
                                        if gamma { w0 ^ delta } else { w0 },
                                        Some((table_g, table_e)),
                                    )
                                }
                            }
                        })
                        .collect::<Vec<(Block, Option<(Block, Block)>)>>()
                },
                |w, parts| {
                    let mut labels = labels.write().unwrap_or_else(|p| p.into_inner());
                    let span_start = spans[w].start;
                    for (task_start, outs) in parts {
                        for (k, (out_label, gate_rows)) in outs.into_iter().enumerate() {
                            let gi = order[span_start + task_start + k] as usize;
                            labels[gates[gi].out.index()] = out_label;
                            if let Some((table_g, table_e)) = gate_rows {
                                let off = 2 * (lv.nonfree_before(gi) as usize - base_nf);
                                rows[off] = table_g;
                                rows[off + 1] = table_e;
                            }
                        }
                    }
                },
            );
        }
        out.extend_from_slice(&rows);
        self.next_gate = end;
        self.rows_emitted += 2 * done;
        self.garbler.tweak += 2 * done as u64;
        done
    }

    /// Closes the cycle: latches register labels forward for the next
    /// cycle and returns the point-and-permute decode bit per output wire.
    ///
    /// # Panics
    ///
    /// Panics if gates remain ungarbled, or on table-count drift (a gate
    /// having pushed the wrong number of rows) — caught here, at garble
    /// time, where the evaluator's stream-length check would report it a
    /// party too late.
    pub fn finish(self) -> Vec<bool> {
        let g = self.garbler;
        let c = g.circuit;
        assert_eq!(
            self.next_gate,
            c.gates().len(),
            "finish before the cycle's gate walk completed ({} of {} gates)",
            self.next_gate,
            c.gates().len()
        );
        assert_eq!(
            self.rows_emitted,
            2 * g.nonfree,
            "garbled table count drift: produced {} rows for {} non-free gates",
            self.rows_emitted,
            g.nonfree
        );
        let labels = self.labels.into_inner().unwrap_or_else(|p| p.into_inner());
        // Latch: next cycle's q false labels are this cycle's d labels.
        for (slot, r) in g.reg_labels.iter_mut().zip(c.registers()) {
            *slot = labels[r.d.index()];
        }
        c.outputs()
            .iter()
            .map(|w| labels[w.index()].color())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use deepsecure_circuit::Builder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn label_pairs_differ_by_delta() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        b.output(z);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Garbler::new(&c, &mut rng);
        let cyc = g.garble_cycle(&mut rng);
        for (l0, l1) in cyc
            .garbler_input_labels
            .iter()
            .chain(&cyc.evaluator_input_labels)
        {
            assert!(g.labels_differ_by_delta(*l0, *l1));
            assert_ne!(l0.color(), l1.color(), "point-permute colors differ");
        }
    }

    #[test]
    fn tweaks_never_repeat_across_cycles() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let q = b.register(false);
        let d = b.and(q, x);
        b.connect_register(q, d);
        b.output(d);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Garbler::new(&c, &mut rng);
        let before = g.tweak;
        let _ = g.garble_cycle(&mut rng);
        let mid = g.tweak;
        let _ = g.garble_cycle(&mut rng);
        assert!(mid > before);
        assert!(g.tweak > mid);
    }

    #[test]
    fn fresh_labels_each_cycle() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        b.output(x);
        let c = b.finish();
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = Garbler::new(&c, &mut rng);
        let c1 = g.garble_cycle(&mut rng);
        let c2 = g.garble_cycle(&mut rng);
        assert_ne!(c1.garbler_input_labels[0].0, c2.garbler_input_labels[0].0);
    }
}
